//! Arbitrary-precision integers.
//!
//! The watermark value `W` in the paper ranges up to 768 bits (Figure 5),
//! while all per-piece arithmetic fits in 64 bits. This module provides the
//! minimal big-integer tool-chest the recombination algorithm needs:
//! magnitude arithmetic ([`BigUint`]), signed arithmetic and the extended
//! Euclidean algorithm ([`BigInt`]), and decimal/byte conversions.
//!
//! The representation is a little-endian `Vec<u64>` of limbs with the
//! invariant that the most significant limb is non-zero (zero is the empty
//! vector). Schoolbook algorithms are used throughout: operand sizes in
//! this system never exceed a few dozen limbs, where asymptotically faster
//! algorithms do not pay off.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Rem, Shl, Shr, Sub, SubAssign};
use std::str::FromStr;

use crate::MathError;

/// An arbitrary-precision unsigned integer.
///
/// # Example
///
/// ```
/// use pathmark_math::bigint::BigUint;
///
/// let a = BigUint::from(2u64).pow(100);
/// let b = &a + &BigUint::from(1u64);
/// assert_eq!(b.to_string(), "1267650600228229401496703205377");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: `limbs.last() != Some(&0)`.
    limbs: Vec<u64>,
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Constructs a value from little-endian limbs, normalizing trailing
    /// zero limbs away.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrows the little-endian limb slice.
    pub fn as_limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Constructs a value from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(8));
        for chunk in bytes.chunks(8) {
            let mut limb = [0u8; 8];
            limb[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(limb));
        }
        Self::from_limbs(limbs)
    }

    /// Serializes the value as little-endian bytes without trailing zeros
    /// (zero serializes as an empty vector).
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self
            .limbs
            .iter()
            .flat_map(|limb| limb.to_le_bytes())
            .collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Number of significant bits (zero has zero bits).
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => self.limbs.len() * 64 - hi.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian; bit 0 is the least significant).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to one, growing the limb vector as necessary.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1u64 << off;
    }

    /// Converts to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Converts to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// Raises the value to the power `exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Divides by `other`, returning `(quotient, remainder)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DivisionByZero`] if `other` is zero.
    pub fn divrem(&self, other: &BigUint) -> Result<(BigUint, BigUint), MathError> {
        if other.is_zero() {
            return Err(MathError::DivisionByZero);
        }
        if let Some(d) = other.to_u64() {
            let (q, r) = self.divrem_u64(d)?;
            return Ok((q, BigUint::from(r)));
        }
        match self.cmp(other) {
            Ordering::Less => return Ok((BigUint::zero(), self.clone())),
            Ordering::Equal => return Ok((BigUint::one(), BigUint::zero())),
            Ordering::Greater => {}
        }
        // Binary long division: adequate for the limb counts in this
        // system (watermarks are at most ~a dozen limbs).
        let mut quotient = BigUint::zero();
        let mut rem = BigUint::zero();
        for i in (0..self.bits()).rev() {
            rem.shl_assign_1();
            if self.bit(i) {
                rem.limbs.first_mut().map(|l| *l |= 1).unwrap_or_else(|| {
                    rem.limbs.push(1);
                });
            }
            if rem >= *other {
                rem -= other;
                quotient.set_bit(i);
            }
        }
        Ok((quotient, rem))
    }

    /// Divides by a single 64-bit limb, returning `(quotient, remainder)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DivisionByZero`] if `d` is zero.
    pub fn divrem_u64(&self, d: u64) -> Result<(BigUint, u64), MathError> {
        if d == 0 {
            return Err(MathError::DivisionByZero);
        }
        let mut quotient = vec![0u64; self.limbs.len()];
        let mut rem: u128 = 0;
        for (i, &limb) in self.limbs.iter().enumerate().rev() {
            let acc = rem << 64 | limb as u128;
            quotient[i] = (acc / d as u128) as u64;
            rem = acc % d as u128;
        }
        Ok((BigUint::from_limbs(quotient), rem as u64))
    }

    /// Computes `self mod d` for a 64-bit modulus.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DivisionByZero`] if `d` is zero.
    pub fn rem_u64(&self, d: u64) -> Result<u64, MathError> {
        if d == 0 {
            return Err(MathError::DivisionByZero);
        }
        let mut rem: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            rem = ((rem << 64) | limb as u128) % d as u128;
        }
        Ok(rem as u64)
    }

    /// Greatest common divisor by the binary-free Euclid algorithm.
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a
                .divrem(&b)
                .expect("divrem by non-zero cannot fail")
                .1;
            a = b;
            b = r;
        }
        a
    }

    /// In-place left shift by one bit.
    fn shl_assign_1(&mut self) {
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Checked subtraction; `None` if `other > self`.
    pub fn checked_sub(&self, other: &BigUint) -> Option<BigUint> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = false;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (v, b1) = limb.overflowing_sub(rhs);
            let (v, b2) = v.overflowing_sub(borrow as u64);
            *limb = v;
            borrow = b1 || b2;
        }
        debug_assert!(!borrow);
        Some(BigUint::from_limbs(limbs))
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_limbs(vec![v])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        Self::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from(v as u64)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl Add<&BigUint> for &BigUint {
    type Output = BigUint;

    fn add(self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = long.limbs.clone();
        let mut carry = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let rhs_limb = short.limbs.get(i).copied().unwrap_or(0);
            let (v, c1) = limb.overflowing_add(rhs_limb);
            let (v, c2) = v.overflowing_add(carry);
            *limb = v;
            carry = (c1 || c2) as u64;
            if carry == 0 && i >= short.limbs.len() {
                break;
            }
        }
        if carry != 0 {
            limbs.push(carry);
        }
        BigUint::from_limbs(limbs)
    }
}

impl Add for BigUint {
    type Output = BigUint;

    fn add(self, rhs: BigUint) -> BigUint {
        &self + &rhs
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = &*self + rhs;
    }
}

impl Sub<&BigUint> for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics if `rhs > self`; use [`BigUint::checked_sub`] to handle that
    /// case.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs)
            .expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;

    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

impl Mul<&BigUint> for &BigUint {
    type Output = BigUint;

    fn mul(self, rhs: &BigUint) -> BigUint {
        if self.is_zero() || rhs.is_zero() {
            return BigUint::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let acc = limbs[i + j] as u128 + a as u128 * b as u128 + carry;
                limbs[i + j] = acc as u64;
                carry = acc >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let acc = limbs[k] as u128 + carry;
                limbs[k] = acc as u64;
                carry = acc >> 64;
                k += 1;
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;

    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = &*self * rhs;
    }
}

impl Rem<&BigUint> for &BigUint {
    type Output = BigUint;

    /// # Panics
    ///
    /// Panics if `rhs` is zero; use [`BigUint::divrem`] to handle that case.
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).expect("remainder by zero").1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;

    fn shl(self, shift: usize) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &limb in &self.limbs {
                limbs.push((limb << bit_shift) | carry);
                carry = limb >> (64 - bit_shift);
            }
            if carry != 0 {
                limbs.push(carry);
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;

    fn shr(self, shift: usize) -> BigUint {
        let (limb_shift, bit_shift) = (shift / 64, shift % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift != 0 {
            for i in 0..limbs.len() {
                limbs[i] >>= bit_shift;
                if let Some(&next) = limbs.get(i + 1) {
                    limbs[i] |= next << (64 - bit_shift);
                }
            }
        }
        BigUint::from_limbs(limbs)
    }
}

impl Sum for BigUint {
    fn sum<I: Iterator<Item = BigUint>>(iter: I) -> BigUint {
        iter.fold(BigUint::zero(), |acc, x| &acc + &x)
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Peel off base-10^19 digits (the largest power of ten in u64).
        const CHUNK: u64 = 10_000_000_000_000_000_000;
        let mut chunks = Vec::new();
        let mut value = self.clone();
        while !value.is_zero() {
            let (q, r) = value.divrem_u64(CHUNK).expect("CHUNK is non-zero");
            chunks.push(r);
            value = q;
        }
        let mut s = chunks.pop().expect("non-zero value has digits").to_string();
        for chunk in chunks.into_iter().rev() {
            s.push_str(&format!("{chunk:019}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut first = true;
        for &limb in self.limbs.iter().rev() {
            if first {
                write!(f, "{limb:x}")?;
                first = false;
            } else {
                write!(f, "{limb:016x}")?;
            }
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError;

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal digit in big integer literal")
    }
}

impl std::error::Error for ParseBigUintError {}

impl FromStr for BigUint {
    type Err = ParseBigUintError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseBigUintError);
        }
        let ten = BigUint::from(10u64);
        let mut acc = BigUint::zero();
        for c in s.chars() {
            let digit = c.to_digit(10).ok_or(ParseBigUintError)?;
            acc = &(&acc * &ten) + &BigUint::from(digit as u64);
        }
        Ok(acc)
    }
}

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero or positive.
    NonNegative,
}

/// An arbitrary-precision signed integer (sign–magnitude).
///
/// Used by the extended Euclidean algorithm during generalized CRT
/// recombination, where Bézout coefficients may be negative.
///
/// # Example
///
/// ```
/// use pathmark_math::bigint::BigInt;
///
/// let a = BigInt::from(-5i64);
/// let b = BigInt::from(7i64);
/// assert_eq!((&a + &b), BigInt::from(2i64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    magnitude: BigUint,
}

impl BigInt {
    /// The value zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::NonNegative,
            magnitude: BigUint::zero(),
        }
    }

    /// The value one.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::NonNegative,
            magnitude: BigUint::one(),
        }
    }

    /// Constructs a signed integer from a sign and magnitude
    /// (normalizing `-0` to `+0`).
    pub fn from_parts(sign: Sign, magnitude: BigUint) -> Self {
        if magnitude.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign, magnitude }
        }
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.magnitude.is_zero()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Borrows the magnitude.
    pub fn magnitude(&self) -> &BigUint {
        &self.magnitude
    }

    /// Consumes the value, returning its magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.magnitude
    }

    /// Negation.
    pub fn neg(&self) -> BigInt {
        match self.sign {
            _ if self.is_zero() => BigInt::zero(),
            Sign::Negative => BigInt::from_parts(Sign::NonNegative, self.magnitude.clone()),
            Sign::NonNegative => BigInt::from_parts(Sign::Negative, self.magnitude.clone()),
        }
    }

    /// Reduces the value into the canonical residue range `[0, modulus)`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DivisionByZero`] if `modulus` is zero.
    pub fn rem_euclid(&self, modulus: &BigUint) -> Result<BigUint, MathError> {
        let r = self.magnitude.divrem(modulus)?.1;
        Ok(match self.sign {
            Sign::NonNegative => r,
            Sign::Negative if r.is_zero() => r,
            Sign::Negative => modulus - &r,
        })
    }
}

impl From<&BigUint> for BigInt {
    fn from(v: &BigUint) -> Self {
        BigInt::from_parts(Sign::NonNegative, v.clone())
    }
}

impl From<BigUint> for BigInt {
    fn from(v: BigUint) -> Self {
        BigInt::from_parts(Sign::NonNegative, v)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        if v < 0 {
            BigInt::from_parts(Sign::Negative, BigUint::from(v.unsigned_abs()))
        } else {
            BigInt::from_parts(Sign::NonNegative, BigUint::from(v as u64))
        }
    }
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;

    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (a, b) if a == b => BigInt::from_parts(a, &self.magnitude + &rhs.magnitude),
            _ => {
                // Differing signs: subtract the smaller magnitude.
                if self.magnitude >= rhs.magnitude {
                    BigInt::from_parts(self.sign, &self.magnitude - &rhs.magnitude)
                } else {
                    BigInt::from_parts(rhs.sign, &rhs.magnitude - &self.magnitude)
                }
            }
        }
    }
}

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;

    // Subtraction is delegated to sign-magnitude addition of the
    // negated operand, so `+` here is intentional.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &rhs.neg()
    }
}

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;

    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = if self.sign == rhs.sign {
            Sign::NonNegative
        } else {
            Sign::Negative
        };
        BigInt::from_parts(sign, &self.magnitude * &rhs.magnitude)
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            f.write_str("-")?;
        }
        write!(f, "{}", self.magnitude)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Extended Euclidean algorithm: returns `(g, x, y)` with
/// `a·x + b·y = g = gcd(a, b)`.
///
/// # Example
///
/// ```
/// use pathmark_math::bigint::{ext_gcd, BigInt, BigUint};
///
/// let (g, x, y) = ext_gcd(&BigUint::from(240u64), &BigUint::from(46u64));
/// assert_eq!(g, BigUint::from(2u64));
/// let check = &(&BigInt::from(240i64) * &x) + &(&BigInt::from(46i64) * &y);
/// assert_eq!(check, BigInt::from(2i64));
/// ```
pub fn ext_gcd(a: &BigUint, b: &BigUint) -> (BigUint, BigInt, BigInt) {
    let (mut old_r, mut r) = (BigInt::from(a), BigInt::from(b));
    let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
    let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
    while !r.is_zero() {
        let q = old_r
            .magnitude
            .divrem(&r.magnitude)
            .expect("loop guard keeps r non-zero")
            .0;
        let q = BigInt::from_parts(
            if old_r.sign == r.sign {
                Sign::NonNegative
            } else {
                Sign::Negative
            },
            q,
        );
        let next_r = &old_r - &(&q * &r);
        let next_s = &old_s - &(&q * &s);
        let next_t = &old_t - &(&q * &t);
        old_r = std::mem::replace(&mut r, next_r);
        old_s = std::mem::replace(&mut s, next_s);
        old_t = std::mem::replace(&mut t, next_t);
    }
    (old_r.magnitude, old_s, old_t)
}

/// Modular inverse of `a` modulo `m`.
///
/// # Errors
///
/// Returns [`MathError::NoInverse`] if `gcd(a, m) != 1`.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Result<BigUint, MathError> {
    let (g, x, _) = ext_gcd(a, m);
    if !g.is_one() {
        return Err(MathError::NoInverse);
    }
    x.rem_euclid(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u128) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn zero_and_one_identities() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert_eq!(&big(0) + &big(5), big(5));
        assert_eq!(&big(5) * &BigUint::one(), big(5));
        assert_eq!(&big(5) * &BigUint::zero(), BigUint::zero());
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = big(u64::MAX as u128);
        let b = BigUint::one();
        assert_eq!(&a + &b, big(1u128 << 64));
    }

    #[test]
    fn sub_with_borrow_across_limbs() {
        let a = big(1u128 << 64);
        let b = BigUint::one();
        assert_eq!(&a - &b, big(u64::MAX as u128));
    }

    #[test]
    fn checked_sub_underflow_is_none() {
        assert_eq!(big(3).checked_sub(&big(4)), None);
        assert_eq!(big(4).checked_sub(&big(4)), Some(BigUint::zero()));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 0xDEAD_BEEF_u128;
        let b = 0xFEED_FACE_CAFE_u128;
        assert_eq!(&big(a) * &big(b), big(a * b));
    }

    #[test]
    fn mul_large_carries() {
        let a = big(u128::MAX);
        let sq = &a * &a;
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let expected = &(&(&BigUint::one() << 256) - &(&BigUint::one() << 129)) + &BigUint::one();
        assert_eq!(sq, expected);
    }

    #[test]
    fn divrem_round_trip() {
        let n = &big(u128::MAX) * &big(12345);
        let d = big(987654321);
        let (q, r) = n.divrem(&d).unwrap();
        assert!(r < d);
        assert_eq!(&(&q * &d) + &r, n);
    }

    #[test]
    fn divrem_by_zero_errors() {
        assert_eq!(
            big(5).divrem(&BigUint::zero()),
            Err(MathError::DivisionByZero)
        );
        assert_eq!(big(5).divrem_u64(0), Err(MathError::DivisionByZero));
        assert_eq!(big(5).rem_u64(0), Err(MathError::DivisionByZero));
    }

    #[test]
    fn rem_u64_matches_divrem() {
        let n = BigUint::from_str("123456789012345678901234567890123456789").unwrap();
        for d in [1u64, 2, 97, 1 << 32, u64::MAX] {
            assert_eq!(n.rem_u64(d).unwrap(), n.divrem_u64(d).unwrap().1);
        }
    }

    #[test]
    fn shifts_round_trip() {
        let n = BigUint::from_str("987654321987654321987654321").unwrap();
        for s in [0usize, 1, 63, 64, 65, 130] {
            assert_eq!(&(&n << s) >> s, n);
        }
    }

    #[test]
    fn bits_and_bit_access() {
        let n = &BigUint::one() << 100;
        assert_eq!(n.bits(), 101);
        assert!(n.bit(100));
        assert!(!n.bit(99));
        assert!(!n.bit(101));
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let s = "340282366920938463463374607431768211456"; // 2^128
        let n = BigUint::from_str(s).unwrap();
        assert_eq!(n.to_string(), s);
        assert_eq!(n, &BigUint::one() << 128);
        assert_eq!(BigUint::zero().to_string(), "0");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(BigUint::from_str("").is_err());
        assert!(BigUint::from_str("12a4").is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let n = BigUint::from_str("123456789012345678901234567890").unwrap();
        assert_eq!(BigUint::from_bytes_le(&n.to_bytes_le()), n);
        assert_eq!(BigUint::from_bytes_le(&[]), BigUint::zero());
        assert!(BigUint::zero().to_bytes_le().is_empty());
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(format!("{:x}", big(0xdeadbeef)), "deadbeef");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        let n = &BigUint::one() << 64;
        assert_eq!(format!("{n:x}"), "10000000000000000");
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(big(2).pow(10), big(1024));
        assert_eq!(big(7).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
        assert_eq!(big(3).pow(40), big(12157665459056928801u128));
    }

    #[test]
    fn gcd_cases() {
        assert_eq!(big(48).gcd(&big(18)), big(6));
        assert_eq!(big(0).gcd(&big(7)), big(7));
        assert_eq!(big(7).gcd(&big(0)), big(7));
        let a = &big(982451653) * &big(57885161);
        let b = &big(982451653) * &big(37);
        assert_eq!(a.gcd(&b), big(982451653));
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        let a = BigUint::from_str("123456789123456789").unwrap();
        let b = BigUint::from_str("987654321987654").unwrap();
        let (g, x, y) = ext_gcd(&a, &b);
        assert_eq!(a.gcd(&b), g);
        let lhs = &(&BigInt::from(&a) * &x) + &(&BigInt::from(&b) * &y);
        assert_eq!(lhs, BigInt::from(g));
    }

    #[test]
    fn mod_inverse_works_and_fails() {
        let inv = mod_inverse(&big(3), &big(7)).unwrap();
        assert_eq!(inv, big(5)); // 3·5 = 15 ≡ 1 (mod 7)
        assert_eq!(mod_inverse(&big(6), &big(9)), Err(MathError::NoInverse));
    }

    #[test]
    fn bigint_signed_arithmetic() {
        let a = BigInt::from(-15i64);
        let b = BigInt::from(9i64);
        assert_eq!(&a + &b, BigInt::from(-6i64));
        assert_eq!(&a - &b, BigInt::from(-24i64));
        assert_eq!(&a * &b, BigInt::from(-135i64));
        assert_eq!(a.neg(), BigInt::from(15i64));
        assert_eq!(BigInt::zero().neg(), BigInt::zero());
    }

    #[test]
    fn bigint_rem_euclid_is_canonical() {
        let m = big(7);
        assert_eq!(BigInt::from(-15i64).rem_euclid(&m).unwrap(), big(6));
        assert_eq!(BigInt::from(15i64).rem_euclid(&m).unwrap(), big(1));
        assert_eq!(BigInt::from(-14i64).rem_euclid(&m).unwrap(), big(0));
    }

    #[test]
    fn ordering_by_length_then_lex() {
        assert!(big(u64::MAX as u128 + 1) > big(u64::MAX as u128));
        assert!(big(5) < big(6));
        assert_eq!(big(5).cmp(&big(5)), Ordering::Equal);
    }

    #[test]
    fn sum_iterator() {
        let total: BigUint = (1u64..=100).map(BigUint::from).sum();
        assert_eq!(total, big(5050));
    }
}
