//! Pathmark-as-a-service: a resident recognition daemon.
//!
//! Batch runs pay session derivation (prime search, statement
//! enumeration, cipher setup) and trace extraction on every invocation
//! and throw the warm state away at exit. This crate keeps that state
//! resident: a [`server::Server`] hosts long-lived embed/recognize
//! sessions behind a line-oriented JSONL protocol ([`protocol`]) over
//! stdin/stdout, a unix-domain socket, or (behind the `tcp` feature)
//! a TCP listener, with
//!
//! * a warm session [`registry`] keyed per tenant watermark key, with
//!   per-key isolation and warm per-copy recognize sessions;
//! * concurrent connections — one thread per client under a connection
//!   cap, each with its own response writer and in-flight scope, so a
//!   slow or stalled client never blocks another client's requests or
//!   goodbye;
//! * [`admission`] control — a bounded in-flight budget that sheds
//!   excess load with a distinct status instead of queueing unboundedly,
//!   split fairly across active tenants so one flooding tenant cannot
//!   monopolize the daemon;
//! * a crash-safe write-ahead [`journal`] built on the fleet's
//!   `ReportWriter`, so a daemon killed mid-stream resumes its in-flight
//!   jobs on restart and finalizes reports bit-identical to an
//!   uninterrupted run — with size-triggered rotation folding settled
//!   intents into a compacted segment, so a daemon serving for days
//!   keeps its journal bounded;
//! * graceful shutdown that stops admissions, drains the queue,
//!   finalizes the journal, and severs lingering connections.
//!
//! Per-job execution reuses the batch engine's single-job kernels, so a
//! report produced by the daemon matches the batch report for the same
//! manifest modulo `wall_ms`.

pub mod admission;
pub mod journal;
pub mod protocol;
pub mod registry;
pub mod server;

pub use admission::{AdmissionGate, ConnectionInflight, Permit, ShedCause};
pub use journal::Journal;
pub use protocol::{Op, Request};
pub use registry::Registry;
pub use server::{shared_writer, ServeOptions, Server, SharedWriter};
