//! Admission control over the fleet worker pool: a bounded in-flight
//! budget with load-shed and per-tenant fairness, the backpressure half
//! of the daemon.
//!
//! The pool's queue is unbounded by design (a batch run enqueues its
//! whole manifest at once); a resident daemon cannot afford that — an
//! aggressive client would grow the queue without bound and every
//! accepted job is a durability promise in the journal. The gate caps
//! *accepted-but-unsettled* jobs: past the cap, [`AdmissionGate::try_admit`]
//! refuses and the server answers with the distinct `shed` status
//! instead of queueing. Each admission is a [`Permit`] whose `Drop`
//! releases the slot, so a panicking job cannot leak capacity.
//!
//! Two refusal causes are distinguished:
//!
//! * [`ShedCause::Capacity`] — the global budget is exhausted
//!   ([`Counter::JobShed`]). With a single tenant this is the only
//!   possible refusal, exactly as before fairness existed.
//! * [`ShedCause::Tenant`] — the gate had room, but the requesting
//!   tenant already holds its fair share: `max(1, max_inflight /
//!   active_tenants)` slots, where a tenant is *active* while it has
//!   jobs in flight ([`Counter::TenantShed`]). One tenant flooding the
//!   daemon therefore cannot starve another: the moment a second tenant
//!   holds a job, the flooder's budget halves and its surplus is shed.
//!
//! Every permit is also tagged with the *connection* that admitted it
//! (a [`ConnectionInflight`] scope), so a connection's EOF/teardown can
//! drain exactly its own jobs without waiting on other clients' work.
//!
//! All mutexes here recover from poisoning
//! (`unwrap_or_else(PoisonError::into_inner)`): the guarded state is
//! counter-shaped, so a panic mid-update leaves it usable — at worst a
//! slot leaks until its permit drops, never the whole daemon.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use pathmark_telemetry::{Counter, Telemetry};

fn recover<'a, T>(lock: &'a Mutex<T>) -> MutexGuard<'a, T> {
    lock.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why [`AdmissionGate::try_admit`] refused a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedCause {
    /// The global in-flight budget is exhausted.
    Capacity,
    /// The tenant is at its per-tenant fairness sub-budget while the
    /// gate still has room for other tenants.
    Tenant,
}

/// One connection's in-flight job count: a scope the server creates per
/// transport connection so teardown can drain *that connection's* jobs
/// instead of the whole gate.
#[derive(Debug, Default)]
pub struct ConnectionInflight {
    count: Mutex<usize>,
    changed: Condvar,
}

impl ConnectionInflight {
    /// A fresh scope with nothing in flight.
    pub fn new() -> Arc<ConnectionInflight> {
        Arc::new(ConnectionInflight::default())
    }

    /// Jobs admitted through this connection and not yet settled.
    pub fn inflight(&self) -> usize {
        *recover(&self.count)
    }

    /// Blocks until every job admitted through this connection has
    /// settled — the per-connection half of graceful teardown.
    pub fn drain(&self) {
        let mut count = recover(&self.count);
        while *count > 0 {
            count = self
                .changed
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    fn acquire(&self) {
        *recover(&self.count) += 1;
    }

    fn release(&self) {
        let mut count = recover(&self.count);
        *count = count.saturating_sub(1);
        drop(count);
        self.changed.notify_all();
    }
}

#[derive(Debug, Default)]
struct Budget {
    /// Total admitted-but-unsettled jobs.
    inflight: usize,
    /// Per-tenant in-flight counts; entries are removed at zero, so
    /// `tenants.len()` is the number of *active* tenants.
    tenants: HashMap<String, usize>,
}

#[derive(Debug, Default)]
struct GateState {
    budget: Mutex<Budget>,
    changed: Condvar,
}

/// The daemon's bounded in-flight budget with per-tenant fairness.
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    state: Arc<GateState>,
    telemetry: Telemetry,
}

/// One admitted job's slot; dropping it (success, failure, or panic
/// unwind) releases the global slot, the tenant's share, and the
/// connection's in-flight count, and wakes waiters on all three.
#[derive(Debug)]
pub struct Permit {
    state: Arc<GateState>,
    /// `None` for replay permits: replay happens before any live
    /// traffic, so it is exempt from tenant bookkeeping.
    tenant: Option<String>,
    conn: Arc<ConnectionInflight>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        {
            let mut budget = recover(&self.state.budget);
            budget.inflight = budget.inflight.saturating_sub(1);
            if let Some(tenant) = &self.tenant {
                if let Some(count) = budget.tenants.get_mut(tenant) {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        budget.tenants.remove(tenant);
                    }
                }
            }
        }
        self.state.changed.notify_all();
        self.conn.release();
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max_inflight` unsettled jobs (at least
    /// one).
    pub fn new(max_inflight: usize, telemetry: Telemetry) -> AdmissionGate {
        AdmissionGate {
            max_inflight: max_inflight.max(1),
            state: Arc::new(GateState::default()),
            telemetry,
        }
    }

    /// The configured in-flight ceiling.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Jobs admitted and not yet settled.
    pub fn inflight(&self) -> usize {
        recover(&self.state.budget).inflight
    }

    /// Tenants with at least one job in flight.
    pub fn active_tenants(&self) -> usize {
        recover(&self.state.budget).tenants.len()
    }

    /// The fairness sub-budget a tenant would get right now: an equal
    /// split of the gate across active tenants (counting the requester
    /// whether or not it is active yet), floored at one slot.
    fn tenant_budget(&self, budget: &Budget, tenant: &str) -> usize {
        let mut active = budget.tenants.len();
        if !budget.tenants.contains_key(tenant) {
            active += 1;
        }
        (self.max_inflight / active.max(1)).max(1)
    }

    /// Admits a job for `tenant` through `conn` if both the global
    /// budget and the tenant's fair share allow it, else sheds it with
    /// the cause. Counts [`Counter::JobAccepted`], [`Counter::JobShed`],
    /// or [`Counter::TenantShed`] accordingly.
    ///
    /// The global check runs first: a full gate is always
    /// [`ShedCause::Capacity`], so single-tenant behavior is exactly
    /// the pre-fairness gate (one tenant's share *is* the whole gate).
    ///
    /// # Errors
    ///
    /// The [`ShedCause`] when the job is refused.
    pub fn try_admit(
        &self,
        tenant: &str,
        conn: &Arc<ConnectionInflight>,
    ) -> Result<Permit, ShedCause> {
        let mut budget = recover(&self.state.budget);
        if budget.inflight >= self.max_inflight {
            drop(budget);
            self.telemetry.count(Counter::JobShed, 1);
            return Err(ShedCause::Capacity);
        }
        let share = self.tenant_budget(&budget, tenant);
        let held = budget.tenants.get(tenant).copied().unwrap_or(0);
        if held >= share {
            drop(budget);
            self.telemetry.count(Counter::TenantShed, 1);
            return Err(ShedCause::Tenant);
        }
        budget.inflight += 1;
        *budget.tenants.entry(tenant.to_string()).or_insert(0) += 1;
        drop(budget);
        self.telemetry.count(Counter::JobAccepted, 1);
        conn.acquire();
        Ok(Permit {
            state: Arc::clone(&self.state),
            tenant: Some(tenant.to_string()),
            conn: Arc::clone(conn),
        })
    }

    /// Admits a job, blocking until the global budget allows it — the
    /// replay path, where shedding is not an option (the intent is
    /// already a journal promise). Replay runs before any live client,
    /// so it is exempt from tenant fairness.
    pub fn admit(&self, conn: &Arc<ConnectionInflight>) -> Permit {
        let mut budget = recover(&self.state.budget);
        while budget.inflight >= self.max_inflight {
            budget = self
                .state
                .changed
                .wait(budget)
                .unwrap_or_else(PoisonError::into_inner);
        }
        budget.inflight += 1;
        drop(budget);
        self.telemetry.count(Counter::JobAccepted, 1);
        conn.acquire();
        Permit {
            state: Arc::clone(&self.state),
            tenant: None,
            conn: Arc::clone(conn),
        }
    }

    /// Blocks until every admitted job has settled — the graceful-drain
    /// half of shutdown, where *all* connections' responses must be
    /// flushed and journaled before the reports finalize. Connection
    /// teardown drains its own [`ConnectionInflight`] scope instead.
    pub fn drain(&self) {
        let mut budget = recover(&self.state.budget);
        while budget.inflight > 0 {
            budget = self
                .state
                .changed
                .wait(budget)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_telemetry::MemorySink;
    use std::time::Duration;

    #[test]
    fn sheds_past_the_cap_and_recovers_on_release() {
        let sink = Arc::new(MemorySink::new());
        let gate = AdmissionGate::new(2, Telemetry::new(sink.clone()));
        let conn = ConnectionInflight::new();
        let a = gate.try_admit("t", &conn).unwrap();
        let _b = gate.try_admit("t", &conn).unwrap();
        assert_eq!(
            gate.try_admit("t", &conn).unwrap_err(),
            ShedCause::Capacity,
            "third admit sheds on capacity"
        );
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert!(gate.try_admit("t", &conn).is_ok(), "released slot readmits");
        assert_eq!(sink.counter(Counter::JobAccepted), 3);
        assert_eq!(sink.counter(Counter::JobShed), 1);
        assert_eq!(sink.counter(Counter::TenantShed), 0);
    }

    #[test]
    fn a_single_tenant_owns_the_whole_gate() {
        // Fairness must not change single-tenant semantics: the only
        // possible refusal is global capacity.
        let gate = AdmissionGate::new(4, Telemetry::null());
        let conn = ConnectionInflight::new();
        let permits: Vec<Permit> = (0..4).map(|_| gate.try_admit("solo", &conn).unwrap()).collect();
        assert_eq!(gate.try_admit("solo", &conn).unwrap_err(), ShedCause::Capacity);
        drop(permits);
        assert_eq!(gate.inflight(), 0);
        assert_eq!(gate.active_tenants(), 0);
    }

    #[test]
    fn a_flooding_tenant_is_shed_at_its_fair_share() {
        let sink = Arc::new(MemorySink::new());
        let gate = AdmissionGate::new(4, Telemetry::new(sink.clone()));
        let conn = ConnectionInflight::new();
        // Tenant A takes two slots, tenant B one: both are active, so
        // each tenant's share is 4 / 2 = 2.
        let _a1 = gate.try_admit("a", &conn).unwrap();
        let _a2 = gate.try_admit("a", &conn).unwrap();
        let _b1 = gate.try_admit("b", &conn).unwrap();
        assert_eq!(gate.active_tenants(), 2);
        // A is at its share while the gate still has a slot: tenant
        // shed, not capacity shed.
        assert_eq!(gate.try_admit("a", &conn).unwrap_err(), ShedCause::Tenant);
        assert_eq!(sink.counter(Counter::TenantShed), 1);
        assert_eq!(sink.counter(Counter::JobShed), 0);
        // B is under its share and the gate has room: admitted.
        let _b2 = gate.try_admit("b", &conn).unwrap();
        assert_eq!(gate.inflight(), 4);
    }

    #[test]
    fn tenant_budget_floors_at_one_slot() {
        // Three active tenants on a 2-slot gate: the split rounds to
        // zero, but every tenant is still allowed one slot (capacity
        // shedding takes over from there).
        let gate = AdmissionGate::new(2, Telemetry::null());
        let conn = ConnectionInflight::new();
        let _a = gate.try_admit("a", &conn).unwrap();
        let _b = gate.try_admit("b", &conn).unwrap();
        assert_eq!(
            gate.try_admit("c", &conn).unwrap_err(),
            ShedCause::Capacity,
            "the floor admits c past fairness; only capacity refuses it"
        );
        drop(_a);
        let _c = gate.try_admit("c", &conn).unwrap();
        // b + c fill the gate again; on a gate this small the global
        // ceiling always fires before fairness can.
        assert_eq!(gate.try_admit("c", &conn).unwrap_err(), ShedCause::Capacity);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, Telemetry::null());
        let conn = ConnectionInflight::new();
        assert_eq!(gate.max_inflight(), 1);
        let _p = gate.try_admit("t", &conn).unwrap();
        assert!(gate.try_admit("t", &conn).is_err());
    }

    #[test]
    fn drain_waits_for_permits_and_blocking_admit_wakes() {
        let gate = Arc::new(AdmissionGate::new(1, Telemetry::null()));
        let conn = ConnectionInflight::new();
        let permit = gate.try_admit("t", &conn).unwrap();
        let blocked = {
            let gate = Arc::clone(&gate);
            let conn = Arc::clone(&conn);
            std::thread::spawn(move || {
                // Blocks until the main thread's permit drops.
                let _p = gate.admit(&conn);
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        blocked.join().unwrap();
        gate.drain();
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn connection_scopes_drain_independently() {
        let gate = AdmissionGate::new(8, Telemetry::null());
        let conn_a = ConnectionInflight::new();
        let conn_b = ConnectionInflight::new();
        let a = gate.try_admit("t", &conn_a).unwrap();
        let b = gate.try_admit("t", &conn_b).unwrap();
        assert_eq!(conn_a.inflight(), 1);
        assert_eq!(conn_b.inflight(), 1);
        drop(a);
        // A's scope is empty even though B's job is still in flight:
        // draining A must not wait on B.
        conn_a.drain();
        assert_eq!(gate.inflight(), 1);
        drop(b);
        conn_b.drain();
        assert_eq!(gate.inflight(), 0);
    }

    #[test]
    fn permits_release_even_after_a_lock_was_poisoned() {
        let gate = Arc::new(AdmissionGate::new(2, Telemetry::null()));
        let conn = ConnectionInflight::new();
        let _p = gate.try_admit("t", &conn).unwrap();
        // Poison the budget mutex by panicking while holding it.
        let poisoner = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let _guard = gate.state.budget.lock().unwrap();
                panic!("poison the gate");
            })
        };
        assert!(poisoner.join().is_err());
        // The gate still admits, sheds, and drains: counters are
        // self-consistent state, so the poisoned guard is recovered.
        let q = gate.try_admit("t", &conn).unwrap();
        assert_eq!(gate.inflight(), 2);
        assert_eq!(gate.try_admit("t", &conn).unwrap_err(), ShedCause::Capacity);
        drop(q);
        drop(_p);
        gate.drain();
        conn.drain();
    }
}
