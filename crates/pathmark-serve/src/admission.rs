//! Admission control over the fleet worker pool: a bounded in-flight
//! budget with load-shed, the backpressure half of the daemon.
//!
//! The pool's queue is unbounded by design (a batch run enqueues its
//! whole manifest at once); a resident daemon cannot afford that — an
//! aggressive client would grow the queue without bound and every
//! accepted job is a durability promise in the journal. The gate caps
//! *accepted-but-unsettled* jobs: past the cap, [`AdmissionGate::try_admit`]
//! refuses and the server answers with the distinct `shed` status
//! instead of queueing. Each admission is a [`Permit`] whose `Drop`
//! releases the slot, so a panicking job cannot leak capacity.
//!
//! Admissions and refusals are counted
//! ([`Counter::JobAccepted`] / [`Counter::JobShed`]) next to the pool's
//! own queue-wait spans, so saturation is visible in `--metrics` output.

use std::sync::{Arc, Condvar, Mutex};

use pathmark_telemetry::{Counter, Telemetry};

#[derive(Debug)]
struct GateState {
    inflight: Mutex<usize>,
    changed: Condvar,
}

/// The daemon's bounded in-flight budget.
#[derive(Debug)]
pub struct AdmissionGate {
    max_inflight: usize,
    state: Arc<GateState>,
    telemetry: Telemetry,
}

/// One admitted job's slot; dropping it (success, failure, or panic
/// unwind) releases the slot and wakes waiters.
#[derive(Debug)]
pub struct Permit {
    state: Arc<GateState>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut inflight = self.state.inflight.lock().expect("gate lock");
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.state.changed.notify_all();
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max_inflight` unsettled jobs (at least
    /// one).
    pub fn new(max_inflight: usize, telemetry: Telemetry) -> AdmissionGate {
        AdmissionGate {
            max_inflight: max_inflight.max(1),
            state: Arc::new(GateState {
                inflight: Mutex::new(0),
                changed: Condvar::new(),
            }),
            telemetry,
        }
    }

    /// The configured in-flight ceiling.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight
    }

    /// Jobs admitted and not yet settled.
    pub fn inflight(&self) -> usize {
        *self.state.inflight.lock().expect("gate lock")
    }

    /// Admits a job if the budget allows, else sheds it. Counts
    /// [`Counter::JobAccepted`] or [`Counter::JobShed`] accordingly.
    pub fn try_admit(&self) -> Option<Permit> {
        let mut inflight = self.state.inflight.lock().expect("gate lock");
        if *inflight >= self.max_inflight {
            drop(inflight);
            self.telemetry.count(Counter::JobShed, 1);
            return None;
        }
        *inflight += 1;
        drop(inflight);
        self.telemetry.count(Counter::JobAccepted, 1);
        Some(Permit {
            state: Arc::clone(&self.state),
        })
    }

    /// Admits a job, blocking until the budget allows it — the replay
    /// path, where shedding is not an option (the intent is already a
    /// journal promise).
    pub fn admit(&self) -> Permit {
        let mut inflight = self.state.inflight.lock().expect("gate lock");
        while *inflight >= self.max_inflight {
            inflight = self.state.changed.wait(inflight).expect("gate lock");
        }
        *inflight += 1;
        drop(inflight);
        self.telemetry.count(Counter::JobAccepted, 1);
        Permit {
            state: Arc::clone(&self.state),
        }
    }

    /// Blocks until every admitted job has settled — the graceful-drain
    /// half of shutdown (and of connection teardown, so responses are
    /// flushed before the stream closes).
    pub fn drain(&self) {
        let mut inflight = self.state.inflight.lock().expect("gate lock");
        while *inflight > 0 {
            inflight = self.state.changed.wait(inflight).expect("gate lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_telemetry::MemorySink;
    use std::time::Duration;

    #[test]
    fn sheds_past_the_cap_and_recovers_on_release() {
        let sink = Arc::new(MemorySink::new());
        let gate = AdmissionGate::new(2, Telemetry::new(sink.clone()));
        let a = gate.try_admit().unwrap();
        let _b = gate.try_admit().unwrap();
        assert!(gate.try_admit().is_none(), "third admit sheds");
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert!(gate.try_admit().is_some(), "released slot readmits");
        assert_eq!(sink.counter(Counter::JobAccepted), 3);
        assert_eq!(sink.counter(Counter::JobShed), 1);
    }

    #[test]
    fn zero_cap_is_clamped_to_one() {
        let gate = AdmissionGate::new(0, Telemetry::null());
        assert_eq!(gate.max_inflight(), 1);
        let _p = gate.try_admit().unwrap();
        assert!(gate.try_admit().is_none());
    }

    #[test]
    fn drain_waits_for_permits_and_blocking_admit_wakes() {
        let gate = Arc::new(AdmissionGate::new(1, Telemetry::null()));
        let permit = gate.try_admit().unwrap();
        let blocked = {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                // Blocks until the main thread's permit drops.
                let _p = gate.admit();
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        drop(permit);
        blocked.join().unwrap();
        gate.drain();
        assert_eq!(gate.inflight(), 0);
    }
}
