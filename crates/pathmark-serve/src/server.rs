//! The resident daemon: dispatch loop, transports, and lifecycle.
//!
//! One [`Server`] owns the warm [`Registry`], the fleet [`WorkerPool`]
//! and [`TraceCache`], the [`AdmissionGate`], and the write-ahead
//! [`Journal`]. Request lines arrive from a transport —
//! [`Server::serve_stdio`] or [`Server::serve_unix`] — and dispatch on
//! the transport thread; accepted jobs run on the pool and stream their
//! responses back in completion order (responses carry `job_id`, so
//! clients correlate). The per-job execution kernels are the *same*
//! functions the batch engine runs ([`embed_one`] / [`recognize_one`]),
//! which is what makes a serve report bit-identical (modulo `wall_ms`)
//! to the batch report for the same manifest.
//!
//! Lifecycle:
//!
//! * **accept** — journal the intent, admit past the gate (or shed),
//!   enqueue; the journal entry precedes the enqueue, so a crash never
//!   loses an acknowledged job.
//! * **crash** (`kill -9`) — the journal's intents + outcome sidecars
//!   survive; restarting with `resume: true` replays `open` intents,
//!   re-runs pending jobs, and answers duplicate submissions from the
//!   recorded outcomes ([`Counter::JobResumed`]).
//! * **graceful shutdown** (`{"op":"shutdown"}` or stdio EOF) — drain
//!   the gate, finalize both reports (acceptance order, fsync, atomic
//!   rename), acknowledge, exit.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pathmark_core::java::Recognizer;
use pathmark_fleet::batch::{embed_one, recognize_one, RecognizeJob};
use pathmark_fleet::cache::TraceCache;
use pathmark_fleet::manifest::{to_hex, EmbedJobSpec, JobReport, JobStatus};
use pathmark_fleet::pool::WorkerPool;
use pathmark_fleet::retry::RetryPolicy;
use pathmark_telemetry::{Counter, Telemetry};
use stackvm::trace::TraceConfig;
use stackvm::Program;

use crate::admission::{AdmissionGate, Permit};
use crate::journal::Journal;
use crate::protocol::{
    error_line, job_line, opened_line, pong_line, shed_line, shutdown_line, stats_line,
    Disposition, EmbedRequest, Op, RecognizeRequest, Request, StatsSnapshot,
};
use crate::registry::{Registry, Tenant};

/// Where responses go: a line-oriented writer shared between the
/// dispatch thread and the pool workers.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wraps a writer for concurrent response emission.
pub fn shared_writer(writer: Box<dyn Write + Send>) -> SharedWriter {
    Arc::new(Mutex::new(writer))
}

/// Writes one response line. Write errors are swallowed: a client that
/// hung up loses its responses, never the daemon (outcomes are already
/// journaled).
fn respond(out: &SharedWriter, line: &str) {
    let mut writer = out.lock().expect("response writer lock");
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Journal path prefix; the daemon owns
    /// `PREFIX.{intents,embed,recognize}.jsonl`.
    pub journal_prefix: PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Admission ceiling: accepted-but-unsettled jobs past this are
    /// shed.
    pub max_inflight: usize,
    /// Resume a crashed daemon's journal instead of truncating it.
    pub resume: bool,
    /// Per-job retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Telemetry sink shared by sessions, pool, cache, and gate.
    pub telemetry: Telemetry,
}

impl ServeOptions {
    /// Defaults: one worker per core, 64 in-flight jobs, fresh journal,
    /// no retries, telemetry disabled.
    pub fn new(journal_prefix: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            journal_prefix: journal_prefix.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_inflight: 64,
            resume: false,
            retry: RetryPolicy::none(),
            telemetry: Telemetry::null(),
        }
    }
}

#[derive(Debug, Default)]
struct LifetimeCounters {
    accepted: AtomicU64,
    shed: AtomicU64,
    resumed: AtomicU64,
    completed: AtomicU64,
}

/// Whether a line is being served live or replayed from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// A client is on the other end: journal new intents, shed on
    /// overload.
    Live,
    /// Startup replay of journaled intents: never re-journal, never
    /// shed (the intent is already a promise — block for a slot).
    Replay,
}

/// A resident recognition/embedding daemon.
pub struct Server {
    registry: Registry,
    pool: WorkerPool,
    cache: Arc<TraceCache>,
    gate: Arc<AdmissionGate>,
    journal: Arc<Mutex<Option<Journal>>>,
    counters: Arc<LifetimeCounters>,
    retry: RetryPolicy,
    telemetry: Telemetry,
}

impl Server {
    /// Builds the daemon: opens (or resumes) the journal and, when
    /// resuming, replays journaled intents — tenants are rebuilt,
    /// pending jobs re-run to completion, settled jobs counted as
    /// resumed — before the first transport line is read.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, rendered as strings.
    pub fn new(options: ServeOptions) -> Result<Server, String> {
        let prefix = &options.journal_prefix;
        let (journal, replay) = if options.resume {
            Journal::resume(prefix).map_err(|e| format!("{}: {e}", prefix.display()))?
        } else {
            let journal =
                Journal::create(prefix).map_err(|e| format!("{}: {e}", prefix.display()))?;
            (journal, Vec::new())
        };
        let server = Server {
            registry: Registry::new(options.telemetry.clone()),
            pool: WorkerPool::with_telemetry(options.workers, options.telemetry.clone()),
            cache: Arc::new(TraceCache::with_telemetry(options.telemetry.clone())),
            gate: Arc::new(AdmissionGate::new(
                options.max_inflight,
                options.telemetry.clone(),
            )),
            journal: Arc::new(Mutex::new(Some(journal))),
            counters: Arc::new(LifetimeCounters::default()),
            retry: options.retry,
            telemetry: options.telemetry,
        };
        // Replay responses go nowhere: the clients they belonged to are
        // gone. Duplicate *re-submissions* after restart get journaled
        // answers on their own connections instead.
        let sink = shared_writer(Box::new(std::io::sink()));
        for line in &replay {
            server.dispatch(line, &sink, Mode::Replay);
        }
        // Settle every replayed job before serving: a resumed daemon
        // that answers its first client has already kept yesterday's
        // promises.
        server.gate.drain();
        Ok(server)
    }

    /// A point-in-time counter snapshot, including the decode-cache
    /// statistics aggregated over every resident recognize session —
    /// the observable payoff of keeping sessions warm.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.registry.decode_cache_stats();
        StatsSnapshot {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            resumed: self.counters.resumed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            inflight: self.gate.inflight() as u64,
            queue_depth: self.pool.queue_depth() as u64,
            tenants: self.registry.count() as u64,
            decode_cache_hits: cache.hits,
            decode_cache_misses: cache.misses,
            decode_cache_evictions: cache.evictions,
            decode_cache_entries: cache.entries,
        }
    }

    /// Serves request lines from `reader` until EOF or a `shutdown`
    /// request. Returns whether shutdown was requested (the journal is
    /// then finalized and the daemon should exit). On plain EOF the
    /// gate is drained first, so every accepted job's response reaches
    /// the writer before the transport is torn down.
    ///
    /// # Errors
    ///
    /// Transport read errors only — protocol defects become `error`
    /// responses.
    pub fn serve_lines<R: BufRead>(&self, reader: R, out: &SharedWriter) -> std::io::Result<bool> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if self.dispatch(&line, out, Mode::Live) {
                self.shutdown(out);
                return Ok(true);
            }
        }
        self.gate.drain();
        Ok(false)
    }

    /// Serves stdin/stdout: the single-client transport. EOF without a
    /// `shutdown` request still drains and finalizes — closing the pipe
    /// *is* the client's goodbye.
    ///
    /// # Errors
    ///
    /// Transport read errors.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let out = shared_writer(Box::new(std::io::stdout()));
        let shutdown = self.serve_lines(std::io::stdin().lock(), &out)?;
        if !shutdown {
            self.finish();
        }
        Ok(())
    }

    /// Serves a unix-domain socket: clients connect, stream requests,
    /// and disconnect; the daemon persists across connections (that is
    /// the point — sessions stay warm). Connections are served one at a
    /// time. A `shutdown` request finalizes the journal, removes the
    /// socket file, and returns.
    ///
    /// # Errors
    ///
    /// Socket bind/accept errors; per-connection errors are logged to
    /// stderr and the daemon keeps accepting.
    #[cfg(unix)]
    pub fn serve_unix(&self, socket: &Path) -> std::io::Result<()> {
        // A previous daemon killed with SIGKILL leaves its socket file
        // behind; binding over it needs the stale file gone.
        let _ = std::fs::remove_file(socket);
        let listener = std::os::unix::net::UnixListener::bind(socket)?;
        loop {
            let (stream, _) = listener.accept()?;
            let reader = BufReader::new(match stream.try_clone() {
                Ok(clone) => clone,
                Err(e) => {
                    eprintln!("serve: connection setup failed: {e}");
                    continue;
                }
            });
            let out = shared_writer(Box::new(stream));
            match self.serve_lines(reader, &out) {
                Ok(true) => break,
                Ok(false) => continue,
                Err(e) => eprintln!("serve: connection failed: {e}"),
            }
        }
        let _ = std::fs::remove_file(socket);
        Ok(())
    }

    /// Drains in-flight jobs and finalizes the journal without a client
    /// acknowledgement — the EOF/idempotent half of shutdown.
    pub fn finish(&self) {
        self.gate.drain();
        let journal = self.journal.lock().expect("journal lock").take();
        if let Some(journal) = journal {
            if let Err(e) = journal.finalize() {
                eprintln!("serve: journal finalize failed: {e}");
            }
        }
    }

    /// The `shutdown`-request path: drain, finalize, acknowledge.
    fn shutdown(&self, out: &SharedWriter) {
        self.finish();
        respond(out, &shutdown_line(self.counters.completed.load(Ordering::Relaxed)));
    }

    /// Handles one request line. Returns whether shutdown was requested.
    fn dispatch(&self, line: &str, out: &SharedWriter, mode: Mode) -> bool {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(why) => {
                respond(out, &error_line(&why));
                return false;
            }
        };
        match request {
            Request::Ping => respond(out, &pong_line()),
            Request::Stats => respond(out, &stats_line(&self.stats())),
            Request::Shutdown => return true,
            Request::Open(open) => match self.registry.open(&open) {
                Err(why) => respond(out, &error_line(&why)),
                Ok((_, warm)) => {
                    // Journal only builds: a warm hit changes nothing a
                    // resumed daemon would need to redo.
                    if mode == Mode::Live && !warm {
                        self.record_open_intent(line, out);
                    }
                    respond(out, &opened_line(&open.tenant, warm));
                }
            },
            Request::Embed(EmbedRequest {
                tenant,
                spec,
                host,
                out_dir,
            }) => self.handle_job(Op::Embed, &tenant, spec, JobInput::Embed { host, out_dir }, line, out, mode),
            Request::Recognize(RecognizeRequest {
                tenant,
                spec,
                program,
            }) => self.handle_job(
                Op::Recognize,
                &tenant,
                spec,
                JobInput::Recognize { program },
                line,
                out,
                mode,
            ),
        }
        false
    }

    fn record_open_intent(&self, line: &str, out: &SharedWriter) {
        let mut journal = self.journal.lock().expect("journal lock");
        if let Some(journal) = journal.as_mut() {
            if let Err(e) = journal.record_open_intent(line) {
                respond(out, &error_line(&format!("journal: {e}")));
            }
        }
    }

    /// The accept path shared by both job ops: dedup against the
    /// journal, admit past the gate, journal the intent, enqueue.
    #[allow(clippy::too_many_arguments)]
    fn handle_job(
        &self,
        op: Op,
        tenant_name: &str,
        spec: EmbedJobSpec,
        input: JobInput,
        line: &str,
        out: &SharedWriter,
        mode: Mode,
    ) {
        let Some(tenant) = self.registry.get(tenant_name) else {
            respond(
                out,
                &error_line(&format!("unknown tenant `{tenant_name}` (open it first)")),
            );
            return;
        };
        {
            let journal = self.journal.lock().expect("journal lock");
            let Some(journal) = journal.as_ref() else {
                respond(out, &error_line("daemon is shutting down"));
                return;
            };
            // Job ids are daemon-unique per op: answering tenant B from
            // tenant A's journaled outcome would leak across tenants.
            if let Some(owner) = journal.owner(op, &spec.job_id) {
                if owner != tenant_name {
                    respond(
                        out,
                        &error_line(&format!(
                            "{} job `{}` belongs to tenant `{owner}`",
                            op.as_str(),
                            spec.job_id
                        )),
                    );
                    return;
                }
            }
            if let Some(report) = journal.completed(op, &spec.job_id) {
                // The exactly-once half of at-least-once resubmission:
                // answer from the journal, never re-run.
                self.counters.resumed.fetch_add(1, Ordering::Relaxed);
                self.telemetry.count(Counter::JobResumed, 1);
                respond(
                    out,
                    &job_line(op, tenant_name, report, Disposition::Resumed),
                );
                return;
            }
            if mode == Mode::Live && journal.is_accepted(op, &spec.job_id) {
                respond(
                    out,
                    &error_line(&format!(
                        "{} job `{}` is already in flight",
                        op.as_str(),
                        spec.job_id
                    )),
                );
                return;
            }
        }
        let permit = match mode {
            Mode::Live => match self.gate.try_admit() {
                Some(permit) => permit,
                None => {
                    self.counters.shed.fetch_add(1, Ordering::Relaxed);
                    respond(out, &shed_line(op, tenant_name, &spec.job_id));
                    return;
                }
            },
            Mode::Replay => self.gate.admit(),
        };
        if mode == Mode::Live {
            let mut journal = self.journal.lock().expect("journal lock");
            match journal.as_mut() {
                None => {
                    respond(out, &error_line("daemon is shutting down"));
                    return;
                }
                Some(journal) => {
                    if let Err(e) = journal.record_job_intent(op, tenant_name, &spec.job_id, line) {
                        respond(out, &error_line(&format!("journal: {e}")));
                        return;
                    }
                }
            }
        }
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.enqueue(op, tenant, spec, input, out.clone(), permit);
    }

    /// Runs one accepted job on the pool; its report is journaled and
    /// answered in completion order.
    fn enqueue(
        &self,
        op: Op,
        tenant: Arc<Tenant>,
        spec: EmbedJobSpec,
        input: JobInput,
        out: SharedWriter,
        permit: Permit,
    ) {
        let journal = Arc::clone(&self.journal);
        let counters = Arc::clone(&self.counters);
        let cache = Arc::clone(&self.cache);
        let retry = self.retry.clone();
        let telemetry = self.telemetry.clone();
        self.pool.execute(move || {
            let report = match &input {
                JobInput::Embed { host, out_dir } => {
                    run_embed_job(&tenant, &cache, &spec, host, out_dir, &retry, &telemetry)
                }
                JobInput::Recognize { program } => {
                    run_recognize_job(&tenant, &spec, program, &retry, &telemetry)
                }
            };
            {
                let mut journal = journal.lock().expect("journal lock");
                if let Some(journal) = journal.as_mut() {
                    if let Err(e) = journal.record_outcome(op, &report) {
                        eprintln!("serve: journal write failed for `{}`: {e}", report.job_id);
                    }
                }
            }
            counters.completed.fetch_add(1, Ordering::Relaxed);
            respond(&out, &job_line(op, &tenant.name, &report, Disposition::Fresh));
            drop(permit);
        });
    }
}

/// The op-specific payload of a job request.
enum JobInput {
    Embed { host: String, out_dir: String },
    Recognize { program: String },
}

fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let program = stackvm::codec::decode_program(&bytes).map_err(|e| format!("{path}: {e}"))?;
    stackvm::verify::verify(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn save_program(path: &str, program: &Program) -> Result<(), String> {
    std::fs::write(path, stackvm::codec::encode_program(program)).map_err(|e| format!("{path}: {e}"))
}

/// A deterministic failure report (zero wall time, one attempt), so an
/// interrupted run and its resume agree on failed lines too.
fn failed_report(spec: &EmbedJobSpec, seed: u64, why: String) -> JobReport {
    JobReport {
        job_id: spec.job_id.clone(),
        watermark_hex: spec.watermark_hex.clone().unwrap_or_default(),
        seed,
        status: JobStatus::Failed(why),
        attempts: 1,
        wall_ms: 0,
    }
}

/// One embed job end to end: load the host, share its trace through the
/// cache, run the batch engine's single-job kernel, persist the marked
/// copy *before* the report line (the order `--resume` relies on).
fn run_embed_job(
    tenant: &Tenant,
    cache: &TraceCache,
    spec: &EmbedJobSpec,
    host_path: &str,
    out_dir: &str,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> JobReport {
    let base = &tenant.embedder;
    let seed = spec.effective_seed(base.key().seed);
    let program = match load_program(host_path) {
        Ok(program) => program,
        Err(why) => return failed_report(spec, seed, why),
    };
    let trace = match cache.get_or_trace(&program, base.key(), base.config(), TraceConfig::full())
    {
        Ok(trace) => trace,
        Err(e) => return failed_report(spec, seed, e.to_string()),
    };
    let host = Arc::new(program);
    let outcome = embed_one(base, &host, &trace, spec, retry, telemetry);
    if let Some(marked) = &outcome.marked {
        let result = std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("{out_dir}: {e}"))
            .and_then(|()| save_program(&format!("{out_dir}/{}.pmvm", spec.job_id), marked));
        if let Err(why) = result {
            return JobReport {
                status: JobStatus::Failed(why),
                ..outcome.report
            };
        }
    }
    outcome.report
}

/// One recognize job end to end: resolve the expected watermark with
/// the manifest rules, load the copy, and run the batch engine's
/// single-job kernel against the tenant's *warm* per-copy session.
fn run_recognize_job(
    tenant: &Tenant,
    spec: &EmbedJobSpec,
    program_path: &str,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> JobReport {
    let base: &Recognizer = &tenant.recognizer;
    let seed = spec.effective_seed(base.key().seed);
    let expected = match &spec.watermark_hex {
        Some(hex) => hex.clone(),
        None => match spec.watermark(base.key(), base.config()) {
            Ok(watermark) => to_hex(watermark.value()),
            Err(why) => return failed_report(spec, seed, why),
        },
    };
    let program = match load_program(program_path) {
        Ok(program) => program,
        Err(why) => return failed_report(spec, seed, why),
    };
    let job = RecognizeJob {
        job_id: spec.job_id.clone(),
        program,
        expected_hex: Some(expected),
        seed,
    };
    let warm = tenant.recognizer_for(seed);
    recognize_one(&warm, &job, retry, telemetry).report
}
