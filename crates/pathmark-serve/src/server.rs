//! The resident daemon: dispatch loop, transports, and lifecycle.
//!
//! One [`Server`] owns the warm [`Registry`], the fleet [`WorkerPool`]
//! and [`TraceCache`], the [`AdmissionGate`], and the write-ahead
//! [`Journal`]. Request lines arrive from a transport —
//! [`Server::serve_stdio`], [`Server::serve_unix`], or (behind the
//! `tcp` feature) `Server::serve_tcp` — and dispatch on that
//! connection's thread; accepted jobs run on the pool and stream their
//! responses back in completion order (responses carry `job_id`, so
//! clients correlate). The per-job execution kernels are the *same*
//! functions the batch engine runs ([`embed_one`] / [`recognize_one`]),
//! which is what makes a serve report bit-identical (modulo `wall_ms`)
//! to the batch report for the same manifest.
//!
//! Concurrency model:
//!
//! * The socket transports accept **one thread per connection**,
//!   bounded by [`ServeOptions::max_connections`] (excess connections
//!   wait in the kernel backlog). Each connection gets its own
//!   [`SharedWriter`] and its own [`ConnectionInflight`] scope, so a
//!   connection's EOF or transport error drains only *its* jobs —
//!   never another client's.
//! * Dedup, admission, and the intent append happen under **one**
//!   journal-lock critical section, so two connections racing the same
//!   `job_id` cannot both be accepted, and a permit can never be
//!   issued after shutdown stopped admissions. Response writes happen
//!   strictly outside that lock: a stalled reader can clog its own
//!   socket, not the dispatch path of other clients.
//! * Every mutex in the daemon recovers from poisoning
//!   (`unwrap_or_else(PoisonError::into_inner)`) — the guarded state
//!   is line-buffered or counter-shaped, so a worker panic mid-write
//!   costs one client one line, never the daemon.
//!
//! Lifecycle:
//!
//! * **accept** — journal the intent, admit past the gate (or shed),
//!   enqueue; the journal entry precedes the enqueue, so a crash never
//!   loses an acknowledged job.
//! * **crash** (`kill -9`) — the journal's intents + outcome sidecars
//!   survive; restarting with `resume: true` replays `open` intents,
//!   re-runs pending jobs, and answers duplicate submissions from the
//!   recorded outcomes ([`Counter::JobResumed`]).
//! * **graceful shutdown** (`{"op":"shutdown"}` or stdio EOF) — stop
//!   admitting, drain the gate, finalize both reports (acceptance
//!   order, fsync, atomic rename), acknowledge, sever lingering
//!   connections, exit.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

use pathmark_core::java::Recognizer;
use pathmark_fleet::batch::{embed_one, recognize_one, RecognizeJob};
use pathmark_fleet::cache::TraceCache;
use pathmark_fleet::manifest::{to_hex, EmbedJobSpec, JobReport, JobStatus};
use pathmark_fleet::pool::WorkerPool;
use pathmark_fleet::retry::RetryPolicy;
use pathmark_telemetry::{Counter, Telemetry};
use stackvm::trace::TraceConfig;
use stackvm::Program;

use crate::admission::{AdmissionGate, ConnectionInflight, Permit, ShedCause};
use crate::journal::Journal;
use crate::protocol::{
    error_line, job_line, opened_line, pong_line, shed_line, shutdown_line, stats_line,
    Disposition, EmbedRequest, Op, RecognizeRequest, Request, StatsSnapshot,
};
use crate::registry::{Registry, Tenant};

/// Where responses go: a line-oriented writer shared between the
/// connection's dispatch thread and the pool workers.
pub type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wraps a writer for concurrent response emission.
pub fn shared_writer(writer: Box<dyn Write + Send>) -> SharedWriter {
    Arc::new(Mutex::new(writer))
}

/// Locks a daemon mutex, recovering from poisoning: a panicking worker
/// tears at most its own in-progress line/update, and every guarded
/// structure (response writers, journal, counters) stays usable.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Writes one response line. Write errors are swallowed: a client that
/// hung up loses its responses, never the daemon (outcomes are already
/// journaled).
fn respond(out: &SharedWriter, line: &str) {
    let mut writer = lock(out);
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Journal path prefix; the daemon owns
    /// `PREFIX.{intents,intents.compact,embed,recognize}.jsonl`.
    pub journal_prefix: PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Admission ceiling: accepted-but-unsettled jobs past this are
    /// shed.
    pub max_inflight: usize,
    /// Concurrent-connection cap for the socket transports; excess
    /// connections wait in the kernel accept backlog.
    pub max_connections: usize,
    /// Rotate the journal's live intents file once it exceeds this many
    /// bytes (`None` never rotates).
    pub journal_max_bytes: Option<u64>,
    /// Resume a crashed daemon's journal instead of truncating it.
    pub resume: bool,
    /// Per-job retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Telemetry sink shared by sessions, pool, cache, gate, and
    /// journal.
    pub telemetry: Telemetry,
}

impl ServeOptions {
    /// Defaults: one worker per core, 64 in-flight jobs, 32 concurrent
    /// connections, unbounded journal, fresh journal, no retries,
    /// telemetry disabled.
    pub fn new(journal_prefix: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            journal_prefix: journal_prefix.into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            max_inflight: 64,
            max_connections: 32,
            journal_max_bytes: None,
            resume: false,
            retry: RetryPolicy::none(),
            telemetry: Telemetry::null(),
        }
    }
}

#[derive(Debug, Default)]
struct LifetimeCounters {
    accepted: AtomicU64,
    shed: AtomicU64,
    tenant_shed: AtomicU64,
    resumed: AtomicU64,
    completed: AtomicU64,
    /// Gauge: connections currently being served.
    connections: AtomicU64,
}

/// Whether a line is being served live or replayed from the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// A client is on the other end: journal new intents, shed on
    /// overload.
    Live,
    /// Startup replay of journaled intents: never re-journal, never
    /// shed (the intent is already a promise — block for a slot).
    Replay,
}

/// A resident recognition/embedding daemon.
pub struct Server {
    registry: Registry,
    pool: WorkerPool,
    cache: Arc<TraceCache>,
    gate: Arc<AdmissionGate>,
    journal: Arc<Mutex<Option<Journal>>>,
    /// Flipped (under the journal lock) when shutdown begins; admission
    /// happens under the same lock, so no permit postdates the flip.
    accepting: AtomicBool,
    counters: Arc<LifetimeCounters>,
    max_connections: usize,
    retry: RetryPolicy,
    telemetry: Telemetry,
}

impl Server {
    /// Builds the daemon: opens (or resumes) the journal and, when
    /// resuming, replays journaled intents — tenants are rebuilt,
    /// pending jobs re-run to completion, settled jobs counted as
    /// resumed — before the first transport line is read.
    ///
    /// # Errors
    ///
    /// Journal I/O failures, rendered as strings.
    pub fn new(options: ServeOptions) -> Result<Server, String> {
        let prefix = &options.journal_prefix;
        let (journal, replay) = if options.resume {
            Journal::resume(prefix).map_err(|e| format!("{}: {e}", prefix.display()))?
        } else {
            let journal =
                Journal::create(prefix).map_err(|e| format!("{}: {e}", prefix.display()))?;
            (journal, Vec::new())
        };
        let mut journal = journal
            .with_max_bytes(options.journal_max_bytes)
            .with_telemetry(options.telemetry.clone());
        // A resumed live file already past the cap compacts up front: a
        // daemon whose inherited jobs all settled would otherwise never
        // append, never re-check the threshold, and carry the oversized
        // file forever.
        journal
            .compact_if_oversized()
            .map_err(|e| format!("{}: {e}", prefix.display()))?;
        let server = Server {
            registry: Registry::new(options.telemetry.clone()),
            pool: WorkerPool::with_telemetry(options.workers, options.telemetry.clone()),
            cache: Arc::new(TraceCache::with_telemetry(options.telemetry.clone())),
            gate: Arc::new(AdmissionGate::new(
                options.max_inflight,
                options.telemetry.clone(),
            )),
            journal: Arc::new(Mutex::new(Some(journal))),
            accepting: AtomicBool::new(true),
            counters: Arc::new(LifetimeCounters::default()),
            max_connections: options.max_connections.max(1),
            retry: options.retry,
            telemetry: options.telemetry,
        };
        // Replay responses go nowhere: the clients they belonged to are
        // gone. Duplicate *re-submissions* after restart get journaled
        // answers on their own connections instead.
        let sink = shared_writer(Box::new(std::io::sink()));
        let conn = ConnectionInflight::new();
        for line in &replay {
            server.dispatch(line, &sink, Mode::Replay, &conn);
        }
        // Settle every replayed job before serving: a resumed daemon
        // that answers its first client has already kept yesterday's
        // promises.
        server.gate.drain();
        Ok(server)
    }

    /// A point-in-time counter snapshot, including the decode-cache
    /// statistics aggregated over every resident recognize session —
    /// the observable payoff of keeping sessions warm.
    pub fn stats(&self) -> StatsSnapshot {
        let cache = self.registry.decode_cache_stats();
        let (journal_rotations, report_rotations) = {
            let journal = lock(&self.journal);
            (
                journal.as_ref().map_or(0, Journal::rotations),
                journal.as_ref().map_or(0, Journal::report_rotations),
            )
        };
        StatsSnapshot {
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            tenant_shed: self.counters.tenant_shed.load(Ordering::Relaxed),
            resumed: self.counters.resumed.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            inflight: self.gate.inflight() as u64,
            queue_depth: self.pool.queue_depth() as u64,
            tenants: self.registry.count() as u64,
            connections: self.counters.connections.load(Ordering::Relaxed),
            journal_rotations,
            report_rotations,
            decode_cache_hits: cache.hits,
            decode_cache_misses: cache.misses,
            decode_cache_evictions: cache.evictions,
            decode_cache_entries: cache.entries,
        }
    }

    /// Serves one connection's request lines from `reader` until EOF or
    /// a `shutdown` request. Returns whether shutdown was requested
    /// (the journal is then finalized and the daemon should exit). On
    /// EOF — and on a transport read error, before it propagates — only
    /// *this connection's* in-flight jobs are drained, so every
    /// accepted job's response reaches the writer before the transport
    /// is torn down and a lingering client never delays another
    /// connection's goodbye.
    ///
    /// # Errors
    ///
    /// Transport read errors only — protocol defects become `error`
    /// responses.
    pub fn serve_lines<R: BufRead>(&self, reader: R, out: &SharedWriter) -> std::io::Result<bool> {
        self.counters.connections.fetch_add(1, Ordering::Relaxed);
        let _gauge = ConnectionGauge(&self.counters.connections);
        let conn = ConnectionInflight::new();
        for line in reader.lines() {
            let line = match line {
                Ok(line) => line,
                Err(e) => {
                    // Settle this connection's accepted jobs before
                    // propagating: their responses (and journal
                    // outcomes) must not be abandoned mid-air.
                    conn.drain();
                    return Err(e);
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            if self.dispatch(&line, out, Mode::Live, &conn) {
                self.shutdown(out);
                return Ok(true);
            }
        }
        conn.drain();
        Ok(false)
    }

    /// Serves stdin/stdout: the single-client transport. EOF without a
    /// `shutdown` request still drains and finalizes — closing the pipe
    /// *is* the client's goodbye.
    ///
    /// # Errors
    ///
    /// Transport read errors.
    pub fn serve_stdio(&self) -> std::io::Result<()> {
        let out = shared_writer(Box::new(std::io::stdout()));
        let shutdown = self.serve_lines(std::io::stdin().lock(), &out)?;
        if !shutdown {
            self.finish();
        }
        Ok(())
    }

    /// Serves a unix-domain socket: clients connect, stream requests,
    /// and disconnect; the daemon persists across connections (that is
    /// the point — sessions stay warm) and serves up to
    /// [`ServeOptions::max_connections`] of them concurrently. If the
    /// socket path is already occupied, a live daemon is probed for
    /// first: startup refuses (`AddrInUse`) rather than severing a
    /// running daemon's socket, and only a stale file — left by a
    /// `kill -9` — is removed. A `shutdown` request from any client
    /// finalizes the journal, severs lingering connections, removes the
    /// socket file, and returns.
    ///
    /// # Errors
    ///
    /// Socket bind/accept errors — including `AddrInUse` when a live
    /// daemon already serves this path; per-connection errors are
    /// logged to stderr and the daemon keeps accepting.
    #[cfg(unix)]
    pub fn serve_unix(&self, socket: &Path) -> std::io::Result<()> {
        use std::os::unix::net::{UnixListener, UnixStream};
        if socket.exists() {
            match UnixStream::connect(socket) {
                Ok(_) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!(
                            "{}: a daemon is already serving this socket",
                            socket.display()
                        ),
                    ));
                }
                // Nobody answers: the file is a previous daemon's
                // corpse and binding over it is safe.
                Err(_) => {
                    let _ = std::fs::remove_file(socket);
                }
            }
        }
        let listener = UnixListener::bind(socket)?;
        let result = self.accept_loop(&listener);
        let _ = std::fs::remove_file(socket);
        result
    }

    /// Serves a TCP address (e.g. `127.0.0.1:7700`) with the same
    /// connection handling as the unix transport. TCP has no peer
    /// credentials: bind to loopback or front it with real transport
    /// security before exposing tenant keys to a network.
    ///
    /// # Errors
    ///
    /// Bind/accept errors.
    #[cfg(feature = "tcp")]
    pub fn serve_tcp(&self, addr: &str) -> std::io::Result<()> {
        self.serve_tcp_listener(std::net::TcpListener::bind(addr)?)
    }

    /// Serves an already-bound TCP listener — the testable half of
    /// [`Server::serve_tcp`] (bind port 0, read the real port back).
    ///
    /// # Errors
    ///
    /// Accept errors.
    #[cfg(feature = "tcp")]
    pub fn serve_tcp_listener(&self, listener: std::net::TcpListener) -> std::io::Result<()> {
        self.accept_loop(&listener)
    }

    /// The transport-agnostic accept loop: one thread per connection
    /// under the connection cap, a shared table of open streams so
    /// shutdown can sever lingerers, and a self-connect wake so the
    /// blocking `accept` notices shutdown promptly.
    fn accept_loop<L: ConnListener>(&self, listener: &L) -> std::io::Result<()> {
        let shutting = AtomicBool::new(false);
        let open: Mutex<HashMap<u64, L::Stream>> = Mutex::new(HashMap::new());
        let slots = ConnSlots::new(self.max_connections);
        std::thread::scope(|scope| {
            let mut next_id: u64 = 0;
            let result = loop {
                // Take a connection slot *before* accepting: past the
                // cap, clients queue in the kernel backlog instead of
                // getting a thread.
                slots.acquire();
                if shutting.load(Ordering::SeqCst) {
                    slots.release();
                    break Ok(());
                }
                let stream = match listener.accept_stream() {
                    Ok(stream) => stream,
                    Err(e) => {
                        slots.release();
                        if shutting.load(Ordering::SeqCst) {
                            break Ok(());
                        }
                        break Err(e);
                    }
                };
                if shutting.load(Ordering::SeqCst) {
                    // The wake connection (or an unlucky client racing
                    // shutdown).
                    slots.release();
                    break Ok(());
                }
                let (reader, handle) = match stream.split().and_then(|r| {
                    let h = stream.split()?;
                    Ok((r, h))
                }) {
                    Ok(pair) => pair,
                    Err(e) => {
                        eprintln!("serve: connection setup failed: {e}");
                        slots.release();
                        continue;
                    }
                };
                let id = next_id;
                next_id += 1;
                lock(&open).insert(id, handle);
                let out = shared_writer(Box::new(stream));
                let shutting = &shutting;
                let open = &open;
                let slots = &slots;
                scope.spawn(move || {
                    match self.serve_lines(BufReader::new(reader), &out) {
                        Ok(true) => {
                            // This client asked for shutdown (already
                            // drained + finalized): stop accepting and
                            // kick the blocked accept.
                            shutting.store(true, Ordering::SeqCst);
                            listener.wake();
                        }
                        Ok(false) => {}
                        Err(e) => eprintln!("serve: connection failed: {e}"),
                    }
                    lock(open).remove(&id);
                    slots.release();
                });
            };
            // Sever whatever is still connected — a daemon told to shut
            // down (or dying on an accept error) must not be hostage to
            // a client that never hangs up. Their jobs are already
            // settled (shutdown drained the gate) or journaled.
            for (_, stream) in lock(&open).drain() {
                stream.sever();
            }
            result
        })
    }

    /// Drains in-flight jobs and finalizes the journal without a client
    /// acknowledgement — the EOF/idempotent half of shutdown.
    pub fn finish(&self) {
        // Flip under the journal lock: admission happens under this
        // lock, so once the flip is visible no new permit exists and
        // the drain below is final.
        {
            let _guard = lock(&self.journal);
            self.accepting.store(false, Ordering::SeqCst);
        }
        self.gate.drain();
        let journal = lock(&self.journal).take();
        if let Some(journal) = journal {
            if let Err(e) = journal.finalize() {
                eprintln!("serve: journal finalize failed: {e}");
            }
        }
    }

    /// The `shutdown`-request path: drain, finalize, acknowledge.
    fn shutdown(&self, out: &SharedWriter) {
        self.finish();
        respond(
            out,
            &shutdown_line(self.counters.completed.load(Ordering::Relaxed)),
        );
    }

    /// Handles one request line. Returns whether shutdown was requested.
    fn dispatch(
        &self,
        line: &str,
        out: &SharedWriter,
        mode: Mode,
        conn: &Arc<ConnectionInflight>,
    ) -> bool {
        let request = match Request::parse(line) {
            Ok(request) => request,
            Err(why) => {
                respond(out, &error_line(&why));
                return false;
            }
        };
        match request {
            Request::Ping => respond(out, &pong_line()),
            Request::Stats => respond(out, &stats_line(&self.stats())),
            Request::Shutdown => return true,
            Request::Open(open) => match self.registry.open(&open) {
                Err(why) => respond(out, &error_line(&why)),
                Ok((_, warm)) => {
                    // Journal only builds: a warm hit changes nothing a
                    // resumed daemon would need to redo.
                    if mode == Mode::Live && !warm {
                        self.record_open_intent(line, out);
                    }
                    respond(out, &opened_line(&open.tenant, warm));
                }
            },
            Request::Embed(EmbedRequest {
                tenant,
                spec,
                host,
                out_dir,
            }) => self.handle_job(
                Op::Embed,
                &tenant,
                spec,
                JobInput::Embed { host, out_dir },
                line,
                out,
                mode,
                conn,
            ),
            Request::Recognize(RecognizeRequest {
                tenant,
                spec,
                program,
            }) => self.handle_job(
                Op::Recognize,
                &tenant,
                spec,
                JobInput::Recognize { program },
                line,
                out,
                mode,
                conn,
            ),
        }
        false
    }

    fn record_open_intent(&self, line: &str, out: &SharedWriter) {
        let error = {
            let mut journal = lock(&self.journal);
            match journal.as_mut() {
                Some(journal) => journal.record_open_intent(line).err(),
                None => None,
            }
        };
        if let Some(e) = error {
            respond(out, &error_line(&format!("journal: {e}")));
        }
    }

    /// The already-answerable cases of a job submission, checked under
    /// the journal lock: a foreign tenant reusing the id (journaled
    /// outcomes must not leak across tenants), a settled job (answered
    /// from the journal — the exactly-once half of at-least-once
    /// resubmission), or a live duplicate of an in-flight job.
    fn journaled_answer(
        &self,
        journal: &Journal,
        op: Op,
        tenant_name: &str,
        spec: &EmbedJobSpec,
        mode: Mode,
    ) -> Option<String> {
        if let Some(owner) = journal.owner(op, &spec.job_id) {
            if owner != tenant_name {
                return Some(error_line(&format!(
                    "{} job `{}` belongs to tenant `{owner}`",
                    op.as_str(),
                    spec.job_id
                )));
            }
        }
        if let Some(report) = journal.completed(op, &spec.job_id) {
            self.counters.resumed.fetch_add(1, Ordering::Relaxed);
            self.telemetry.count(Counter::JobResumed, 1);
            return Some(job_line(op, tenant_name, report, Disposition::Resumed));
        }
        if mode == Mode::Live && journal.is_accepted(op, &spec.job_id) {
            return Some(error_line(&format!(
                "{} job `{}` is already in flight",
                op.as_str(),
                spec.job_id
            )));
        }
        None
    }

    /// The accept path shared by both job ops: dedup against the
    /// journal, admit past the gate, journal the intent, enqueue. For
    /// live requests dedup + admission + intent append are one
    /// journal-lock critical section (so racing connections can't
    /// double-accept a job id and shutdown can't strand a permit);
    /// the response is written strictly after the lock drops.
    #[allow(clippy::too_many_arguments)]
    fn handle_job(
        &self,
        op: Op,
        tenant_name: &str,
        spec: EmbedJobSpec,
        input: JobInput,
        line: &str,
        out: &SharedWriter,
        mode: Mode,
        conn: &Arc<ConnectionInflight>,
    ) {
        let Some(tenant) = self.registry.get(tenant_name) else {
            respond(
                out,
                &error_line(&format!("unknown tenant `{tenant_name}` (open it first)")),
            );
            return;
        };
        let permit = match mode {
            Mode::Live => {
                let decision = {
                    let mut guard = lock(&self.journal);
                    if !self.accepting.load(Ordering::SeqCst) {
                        Err(error_line("daemon is shutting down"))
                    } else {
                        match guard.as_mut() {
                            None => Err(error_line("daemon is shutting down")),
                            Some(journal) => {
                                match self.journaled_answer(journal, op, tenant_name, &spec, mode) {
                                    Some(answer) => Err(answer),
                                    None => match self.gate.try_admit(tenant_name, conn) {
                                        Err(cause) => {
                                            let scope = match cause {
                                                ShedCause::Capacity => {
                                                    self.counters
                                                        .shed
                                                        .fetch_add(1, Ordering::Relaxed);
                                                    "capacity"
                                                }
                                                ShedCause::Tenant => {
                                                    self.counters
                                                        .tenant_shed
                                                        .fetch_add(1, Ordering::Relaxed);
                                                    "tenant"
                                                }
                                            };
                                            Err(shed_line(op, tenant_name, &spec.job_id, scope))
                                        }
                                        Ok(permit) => {
                                            match journal.record_job_intent(
                                                op,
                                                tenant_name,
                                                &spec.job_id,
                                                line,
                                            ) {
                                                Ok(()) => Ok(permit),
                                                Err(e) => {
                                                    Err(error_line(&format!("journal: {e}")))
                                                }
                                            }
                                        }
                                    },
                                }
                            }
                        }
                    }
                };
                match decision {
                    Ok(permit) => permit,
                    Err(answer) => {
                        respond(out, &answer);
                        return;
                    }
                }
            }
            Mode::Replay => {
                // Replay never blocks for a slot while holding the
                // journal lock: completing jobs need that lock to
                // record their outcomes.
                let answer = {
                    let guard = lock(&self.journal);
                    match guard.as_ref() {
                        None => Some(error_line("daemon is shutting down")),
                        Some(journal) => {
                            self.journaled_answer(journal, op, tenant_name, &spec, mode)
                        }
                    }
                };
                if let Some(answer) = answer {
                    respond(out, &answer);
                    return;
                }
                self.gate.admit(conn)
            }
        };
        self.counters.accepted.fetch_add(1, Ordering::Relaxed);
        self.enqueue(op, tenant, spec, input, out.clone(), permit);
    }

    /// Runs one accepted job on the pool; its report is journaled and
    /// answered in completion order.
    fn enqueue(
        &self,
        op: Op,
        tenant: Arc<Tenant>,
        spec: EmbedJobSpec,
        input: JobInput,
        out: SharedWriter,
        permit: Permit,
    ) {
        let journal = Arc::clone(&self.journal);
        let counters = Arc::clone(&self.counters);
        let cache = Arc::clone(&self.cache);
        let retry = self.retry.clone();
        let telemetry = self.telemetry.clone();
        self.pool.execute(move || {
            let report = match &input {
                JobInput::Embed { host, out_dir } => {
                    run_embed_job(&tenant, &cache, &spec, host, out_dir, &retry, &telemetry)
                }
                JobInput::Recognize { program } => {
                    run_recognize_job(&tenant, &spec, program, &retry, &telemetry)
                }
            };
            {
                let mut journal = lock(&journal);
                if let Some(journal) = journal.as_mut() {
                    if let Err(e) = journal.record_outcome(op, &report) {
                        eprintln!("serve: journal write failed for `{}`: {e}", report.job_id);
                    }
                }
            }
            counters.completed.fetch_add(1, Ordering::Relaxed);
            respond(&out, &job_line(op, &tenant.name, &report, Disposition::Fresh));
            drop(permit);
        });
    }
}

/// Decrements the connection gauge when a connection's serve loop
/// exits, however it exits.
struct ConnectionGauge<'a>(&'a AtomicU64);

impl Drop for ConnectionGauge<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The connection cap: a tiny semaphore the accept loop takes a slot
/// from before accepting, so excess clients queue in the kernel backlog
/// instead of getting threads.
struct ConnSlots {
    max: usize,
    count: Mutex<usize>,
    changed: Condvar,
}

impl ConnSlots {
    fn new(max: usize) -> ConnSlots {
        ConnSlots {
            max: max.max(1),
            count: Mutex::new(0),
            changed: Condvar::new(),
        }
    }

    fn acquire(&self) {
        let mut count = lock(&self.count);
        while *count >= self.max {
            count = self
                .changed
                .wait(count)
                .unwrap_or_else(PoisonError::into_inner);
        }
        *count += 1;
    }

    fn release(&self) {
        *lock(&self.count) -= 1;
        self.changed.notify_all();
    }
}

/// A byte-stream connection both socket transports speak: cloneable
/// into an independently-owned read half, and severable so shutdown can
/// unblock a lingering client's read.
trait ConnStream: Read + Write + Send + Sized + 'static {
    /// Another handle to the same underlying connection.
    fn split(&self) -> std::io::Result<Self>;
    /// Tears the connection down, unblocking any thread reading it.
    fn sever(&self);
}

#[cfg(unix)]
impl ConnStream for std::os::unix::net::UnixStream {
    fn split(&self) -> std::io::Result<Self> {
        self.try_clone()
    }

    fn sever(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

#[cfg(feature = "tcp")]
impl ConnStream for std::net::TcpStream {
    fn split(&self) -> std::io::Result<Self> {
        self.try_clone()
    }

    fn sever(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }
}

/// A listener the accept loop can block on and be woken from.
trait ConnListener: Sync {
    type Stream: ConnStream;
    /// Blocks for the next connection.
    fn accept_stream(&self) -> std::io::Result<Self::Stream>;
    /// Connects to self so a blocked `accept_stream` returns and
    /// re-checks the shutdown flag.
    fn wake(&self);
}

#[cfg(unix)]
impl ConnListener for std::os::unix::net::UnixListener {
    type Stream = std::os::unix::net::UnixStream;

    fn accept_stream(&self) -> std::io::Result<Self::Stream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn wake(&self) {
        if let Ok(addr) = self.local_addr() {
            if let Some(path) = addr.as_pathname() {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
    }
}

#[cfg(feature = "tcp")]
impl ConnListener for std::net::TcpListener {
    type Stream = std::net::TcpStream;

    fn accept_stream(&self) -> std::io::Result<Self::Stream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn wake(&self) {
        if let Ok(addr) = self.local_addr() {
            let _ = std::net::TcpStream::connect(addr);
        }
    }
}

/// The op-specific payload of a job request.
enum JobInput {
    Embed { host: String, out_dir: String },
    Recognize { program: String },
}

fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let program = stackvm::codec::decode_program(&bytes).map_err(|e| format!("{path}: {e}"))?;
    stackvm::verify::verify(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn save_program(path: &str, program: &Program) -> Result<(), String> {
    std::fs::write(path, stackvm::codec::encode_program(program)).map_err(|e| format!("{path}: {e}"))
}

/// A deterministic failure report (zero wall time, one attempt), so an
/// interrupted run and its resume agree on failed lines too.
fn failed_report(spec: &EmbedJobSpec, seed: u64, why: String) -> JobReport {
    JobReport {
        job_id: spec.job_id.clone(),
        watermark_hex: spec.watermark_hex.clone().unwrap_or_default(),
        seed,
        status: JobStatus::Failed(why),
        attempts: 1,
        wall_ms: 0,
    }
}

/// One embed job end to end: load the host, share its trace through the
/// cache, run the batch engine's single-job kernel, persist the marked
/// copy *before* the report line (the order `--resume` relies on).
fn run_embed_job(
    tenant: &Tenant,
    cache: &TraceCache,
    spec: &EmbedJobSpec,
    host_path: &str,
    out_dir: &str,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> JobReport {
    let base = &tenant.embedder;
    let seed = spec.effective_seed(base.key().seed);
    let program = match load_program(host_path) {
        Ok(program) => program,
        Err(why) => return failed_report(spec, seed, why),
    };
    let trace = match cache.get_or_trace(&program, base.key(), base.config(), TraceConfig::full())
    {
        Ok(trace) => trace,
        Err(e) => return failed_report(spec, seed, e.to_string()),
    };
    let host = Arc::new(program);
    let outcome = embed_one(base, &host, &trace, spec, retry, telemetry);
    if let Some(marked) = &outcome.marked {
        let result = std::fs::create_dir_all(out_dir)
            .map_err(|e| format!("{out_dir}: {e}"))
            .and_then(|()| save_program(&format!("{out_dir}/{}.pmvm", spec.job_id), marked));
        if let Err(why) = result {
            return JobReport {
                status: JobStatus::Failed(why),
                ..outcome.report
            };
        }
    }
    outcome.report
}

/// One recognize job end to end: resolve the expected watermark with
/// the manifest rules, load the copy, and run the batch engine's
/// single-job kernel against the tenant's *warm* per-copy session.
fn run_recognize_job(
    tenant: &Tenant,
    spec: &EmbedJobSpec,
    program_path: &str,
    retry: &RetryPolicy,
    telemetry: &Telemetry,
) -> JobReport {
    let base: &Recognizer = &tenant.recognizer;
    let seed = spec.effective_seed(base.key().seed);
    let expected = match &spec.watermark_hex {
        Some(hex) => hex.clone(),
        None => match spec.watermark(base.key(), base.config()) {
            Ok(watermark) => to_hex(watermark.value()),
            Err(why) => return failed_report(spec, seed, why),
        },
    };
    let program = match load_program(program_path) {
        Ok(program) => program,
        Err(why) => return failed_report(spec, seed, why),
    };
    let job = RecognizeJob {
        job_id: spec.job_id.clone(),
        program,
        expected_hex: Some(expected),
        seed,
    };
    let warm = tenant.recognizer_for(seed);
    recognize_one(&warm, &job, retry, telemetry).report
}
