//! The daemon's write-ahead journal: crash-safe exactly-once job
//! execution built from two existing fleet primitives, with rotation so
//! a long-running daemon's intents stay bounded.
//!
//! * An **intents file** (`PREFIX.intents.jsonl`) records every
//!   *accepted* request line — `open` lines and job lines, verbatim,
//!   unbuffered — *before* the job is enqueued. After a crash, the
//!   intents file says what the daemon had promised to do.
//! * Two [`ReportWriter`]s (`PREFIX.embed.jsonl`,
//!   `PREFIX.recognize.jsonl`) double as the outcome log: settled jobs
//!   stream to the `.partial` sidecars exactly as the batch CLI streams
//!   them, and graceful shutdown finalizes both reports with the same
//!   fsync-then-atomic-rename discipline.
//! * A **compacted segment** (`PREFIX.intents.compact.jsonl`) appears
//!   once the live intents file crosses the rotation threshold
//!   ([`Journal::rotate`]): `open` lines and still-pending job lines
//!   are carried over verbatim, settled jobs are folded to small
//!   `{"op":…,"tenant":…,"job_id":…,"compact":"settled"}` markers (their
//!   full outcomes already live in the report sidecars), and the live
//!   file is truncated. The segment is written to a temp file and
//!   atomically renamed, so rotation can never lose a promise. Resume
//!   reads the segments in order — compact first, then live — and
//!   rebuilds the same acceptance order and tenant ownership an
//!   unrotated journal would.
//!
//! Resume intersects intents with outcomes: outcomes already on disk
//! are *done* (duplicate submissions are answered from the journal),
//! intents with no outcome are *pending* and re-run. A torn trailing
//! line in the live intents file or either sidecar — the kill -9 case —
//! is dropped and rewritten away (the compact segment is rename-atomic
//! and never torn), so the journal a resumed daemon sees is always
//! exactly "what was accepted" and "what finished". Client resubmission
//! after a crash is at-least-once; journal dedup makes execution
//! exactly-once.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::path::{Path, PathBuf};

use pathmark_fleet::json::{parse_object, write_object, Scalar};
use pathmark_fleet::manifest::{JobReport, ReportWriter};
use pathmark_telemetry::{Counter, Telemetry};

use crate::protocol::Op;

/// The write-ahead journal behind one daemon instance.
#[derive(Debug)]
pub struct Journal {
    prefix: PathBuf,
    intents: std::fs::File,
    embed: ReportWriter,
    recognize: ReportWriter,
    /// Outcomes on disk, keyed by (op, job_id) — the dedup map.
    completed: HashMap<(Op, String), JobReport>,
    /// Every job intent ever recorded (completed or pending), mapped to
    /// the tenant that submitted it. Job ids are daemon-unique per op:
    /// the server rejects a second tenant reusing one, so a journaled
    /// outcome is never answered across tenants.
    accepted: HashMap<(Op, String), String>,
    /// Job acceptance order; finalized reports are written in this
    /// order, which is manifest order when a client submits a manifest
    /// top to bottom — the batch bit-identity convention.
    order: Vec<(Op, String)>,
    /// Accepted `open` lines in first-seen order, deduplicated —
    /// carried verbatim into every compacted segment (a resumed daemon
    /// must rebuild tenants before re-running their jobs).
    opens: Vec<String>,
    open_seen: HashSet<String>,
    /// Verbatim request lines of jobs not yet settled: what rotation
    /// must carry over in full (a settled job only needs its marker).
    pending_lines: HashMap<(Op, String), String>,
    /// Rotate once the live intents file exceeds this many bytes;
    /// `None` never rotates (the pre-rotation behavior).
    max_bytes: Option<u64>,
    /// Bytes appended to the live intents file since the last rotation.
    live_bytes: u64,
    rotations: u64,
    /// Report-sidecar compactions performed (either op).
    report_rotations: u64,
    telemetry: Telemetry,
}

fn intents_path(prefix: &Path) -> PathBuf {
    with_suffix(prefix, ".intents.jsonl")
}

fn compact_path(prefix: &Path) -> PathBuf {
    with_suffix(prefix, ".intents.compact.jsonl")
}

fn report_path(prefix: &Path, op: Op) -> PathBuf {
    with_suffix(prefix, &format!(".{}.jsonl", op.as_str()))
}

fn with_suffix(prefix: &Path, suffix: &str) -> PathBuf {
    let mut name = prefix.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    prefix.with_file_name(name)
}

/// The `"compact":"settled"` marker a rotation writes in place of a
/// settled job's full request line.
fn settled_marker(op: Op, tenant: &str, job_id: &str) -> String {
    write_object(&[
        ("op", Scalar::Str(op.as_str().into())),
        ("tenant", Scalar::Str(tenant.into())),
        ("job_id", Scalar::Str(job_id.into())),
        ("compact", Scalar::Str("settled".into())),
    ])
}

impl Journal {
    /// Starts a fresh journal at `PREFIX.{intents,embed,recognize}.jsonl`,
    /// truncating leftovers from an earlier run (including a leftover
    /// compacted segment).
    ///
    /// # Errors
    ///
    /// Whatever creating the files reports.
    pub fn create(prefix: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = prefix.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let _ = std::fs::remove_file(compact_path(prefix));
        Ok(Journal {
            prefix: prefix.to_path_buf(),
            intents: std::fs::File::create(intents_path(prefix))?,
            embed: ReportWriter::create(report_path(prefix, Op::Embed))?,
            recognize: ReportWriter::create(report_path(prefix, Op::Recognize))?,
            completed: HashMap::new(),
            accepted: HashMap::new(),
            order: Vec::new(),
            opens: Vec::new(),
            open_seen: HashSet::new(),
            pending_lines: HashMap::new(),
            max_bytes: None,
            live_bytes: 0,
            rotations: 0,
            report_rotations: 0,
            telemetry: Telemetry::null(),
        })
    }

    /// Sets the rotation threshold: once the live intents file exceeds
    /// `max_bytes`, settled intents are folded into the compacted
    /// segment and the live file truncated.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Journal {
        self.max_bytes = max_bytes;
        self
    }

    /// Reports rotations into `telemetry`
    /// ([`Counter::JournalRotation`]).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Journal {
        self.telemetry = telemetry;
        self
    }

    /// Resumes the journal of a crashed daemon. Returns the journal
    /// (recorded outcomes loaded into the dedup map) plus the request
    /// lines the server must replay: every accepted `open` line first,
    /// then the still-*pending* job lines in acceptance order. Settled
    /// jobs are not replayed — their outcomes are already in the dedup
    /// map, so resubmissions are answered from the journal. A torn
    /// trailing line in the live intents file or either outcome sidecar
    /// is discarded and truncated away; the compacted segment, being
    /// rename-atomic, is read in full (before the live file, preserving
    /// acceptance order across rotations).
    ///
    /// # Errors
    ///
    /// I/O errors reading or rewriting any journal file.
    pub fn resume(prefix: &Path) -> std::io::Result<(Journal, Vec<String>)> {
        if let Some(parent) = prefix.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let (embed, embed_done) = ReportWriter::resume(report_path(prefix, Op::Embed))?;
        let (recognize, recognize_done) =
            ReportWriter::resume(report_path(prefix, Op::Recognize))?;
        let mut completed = HashMap::new();
        for report in embed_done {
            completed.insert((Op::Embed, report.job_id.clone()), report);
        }
        for report in recognize_done {
            completed.insert((Op::Recognize, report.job_id.clone()), report);
        }

        let mut scan = IntentScan::default();
        let compact = compact_path(prefix);
        if compact.exists() {
            // Rename-atomic: never torn, so a bad line is a real error —
            // but stop-at-first-bad keeps resume forgiving either way.
            scan.take_lines(&std::fs::read_to_string(&compact)?);
        }
        let path = intents_path(prefix);
        let live_text = if path.exists() {
            std::fs::read_to_string(&path)?
        } else {
            String::new()
        };
        // The valid prefix of the live file: stop at the first line
        // that does not parse (a write torn by the crash). Everything
        // after it was never acknowledged, so dropping it is safe.
        let live_kept = scan.take_lines(&live_text);

        // Rewrite the live intents file from its valid prefix, dropping
        // the torn tail, then reopen for appending.
        let mut clean = live_kept.join("\n");
        if !clean.is_empty() {
            clean.push('\n');
        }
        std::fs::write(&path, &clean)?;
        let intents = std::fs::OpenOptions::new().append(true).open(&path)?;

        // Pending = accepted with no outcome; those lines must survive
        // future rotations verbatim, and they are what the server
        // replays (after the opens that built their tenants).
        let mut pending_lines = HashMap::new();
        let mut replay: Vec<String> = scan.opens.clone();
        for key in &scan.order {
            if completed.contains_key(key) {
                continue;
            }
            let Some(line) = scan.job_lines.get(key) else {
                // A settled marker whose outcome line was torn away: the
                // request line is gone, so the job cannot be re-run. It
                // keeps its acceptance slot (finalize skips report-less
                // keys) but is surfaced, not silently dropped.
                eprintln!(
                    "serve: journal: {} job `{}` was compacted as settled but has no \
                     recorded outcome; it cannot be replayed",
                    key.0.as_str(),
                    key.1
                );
                continue;
            };
            pending_lines.insert(key.clone(), line.clone());
            replay.push(line.clone());
        }

        Ok((
            Journal {
                prefix: prefix.to_path_buf(),
                intents,
                embed,
                recognize,
                completed,
                accepted: scan.accepted,
                order: scan.order,
                opens: scan.opens,
                open_seen: scan.open_seen,
                pending_lines,
                max_bytes: None,
                live_bytes: clean.len() as u64,
                rotations: 0,
                report_rotations: 0,
                telemetry: Telemetry::null(),
            },
            replay,
        ))
    }

    /// Records an accepted `open` line so a resumed daemon can rebuild
    /// the tenant before re-running its pending jobs.
    ///
    /// # Errors
    ///
    /// Whatever the append reports.
    pub fn record_open_intent(&mut self, line: &str) -> std::io::Result<()> {
        self.append_intent(line)?;
        let line = line.trim();
        if self.open_seen.insert(line.to_string()) {
            self.opens.push(line.to_string());
        }
        self.maybe_rotate()
    }

    /// Records an accepted job line — the promise that this job will
    /// run. Must be called before the job is enqueued.
    ///
    /// # Errors
    ///
    /// Whatever the append reports.
    pub fn record_job_intent(
        &mut self,
        op: Op,
        tenant: &str,
        job_id: &str,
        line: &str,
    ) -> std::io::Result<()> {
        self.append_intent(line)?;
        let key = (op, job_id.to_string());
        if !self.accepted.contains_key(&key) {
            self.accepted.insert(key.clone(), tenant.to_string());
            self.order.push(key.clone());
        }
        self.pending_lines
            .entry(key)
            .or_insert_with(|| line.trim().to_string());
        self.maybe_rotate()
    }

    fn append_intent(&mut self, line: &str) -> std::io::Result<()> {
        let mut owned = line.trim().to_string();
        owned.push('\n');
        // Unbuffered, like the report sidecars: one write per line, so
        // a crash tears at most the line being written.
        self.intents.write_all(owned.as_bytes())?;
        self.live_bytes += owned.len() as u64;
        Ok(())
    }

    /// Whether a job intent was ever recorded (settled or still
    /// pending).
    pub fn is_accepted(&self, op: Op, job_id: &str) -> bool {
        self.accepted.contains_key(&(op, job_id.to_string()))
    }

    /// The tenant that submitted a recorded job intent, if any. The
    /// server uses this to refuse a different tenant reusing the id —
    /// the journaled outcome would otherwise leak across tenants.
    pub fn owner(&self, op: Op, job_id: &str) -> Option<&str> {
        self.accepted
            .get(&(op, job_id.to_string()))
            .map(String::as_str)
    }

    /// The journaled outcome of a settled job, if it settled.
    pub fn completed(&self, op: Op, job_id: &str) -> Option<&JobReport> {
        self.completed.get(&(op, job_id.to_string()))
    }

    /// Number of settled jobs on record.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Rotations performed over this journal's lifetime.
    pub fn rotations(&self) -> u64 {
        self.rotations
    }

    /// Report-sidecar compactions performed over this journal's
    /// lifetime (both ops combined).
    pub fn report_rotations(&self) -> u64 {
        self.report_rotations
    }

    /// Bytes currently in the live intents file.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Streams a settled job's outcome to the op's report sidecar and
    /// adds it to the dedup map. Settling is what makes rotation
    /// worthwhile, so the threshold is re-checked here too.
    ///
    /// # Errors
    ///
    /// Whatever the sidecar append reports.
    pub fn record_outcome(&mut self, op: Op, report: &JobReport) -> std::io::Result<()> {
        match op {
            Op::Embed => self.embed.append(report)?,
            Op::Recognize => self.recognize.append(report)?,
        }
        let key = (op, report.job_id.clone());
        self.pending_lines.remove(&key);
        self.completed.insert(key, report.clone());
        self.maybe_compact_reports(op)?;
        self.maybe_rotate()
    }

    /// Rotates immediately if the live file is already over the cap.
    /// The threshold is otherwise only re-checked on appends, so a
    /// resumed daemon calls this once at startup: an inherited file
    /// whose jobs all settled before the crash would never trigger an
    /// append again.
    ///
    /// # Errors
    ///
    /// Whatever [`Journal::rotate`] reports.
    pub fn compact_if_oversized(&mut self) -> std::io::Result<()> {
        self.maybe_compact_reports(Op::Embed)?;
        self.maybe_compact_reports(Op::Recognize)?;
        self.maybe_rotate()
    }

    /// Folds one op's settled outcomes into its report's compacted
    /// segment once the live `.partial` sidecar exceeds the same byte
    /// cap that bounds the intents file. The segment is written in
    /// acceptance order — the order `finalize` will use — so folding
    /// changes nothing about the finalized report.
    fn maybe_compact_reports(&mut self, op: Op) -> std::io::Result<()> {
        let Some(max) = self.max_bytes else {
            return Ok(());
        };
        let writer = match op {
            Op::Embed => &mut self.embed,
            Op::Recognize => &mut self.recognize,
        };
        if writer.partial_bytes() <= max {
            return Ok(());
        }
        let mut settled = Vec::new();
        for key in &self.order {
            if key.0 != op {
                continue;
            }
            if let Some(report) = self.completed.get(key) {
                settled.push(report.clone());
            }
        }
        writer.compact(&settled)?;
        self.report_rotations += 1;
        self.telemetry.count(Counter::ReportRotation, 1);
        Ok(())
    }

    fn maybe_rotate(&mut self) -> std::io::Result<()> {
        match self.max_bytes {
            Some(max) if self.live_bytes > max => self.rotate(),
            _ => Ok(()),
        }
    }

    /// Folds the journal's full state into the compacted segment —
    /// opens, then per accepted job (in acceptance order) either its
    /// verbatim pending line or a small settled marker — and truncates
    /// the live intents file. Written to a temp file, fsynced, and
    /// renamed into place, so a crash mid-rotation leaves the previous
    /// segment intact; only *after* the rename is the live file
    /// truncated. The sidecar outcome line of every marked job landed
    /// before its marker is written (markers come only from
    /// `record_outcome`'s completed map), so a marker always has a
    /// durable outcome behind it.
    ///
    /// # Errors
    ///
    /// I/O errors writing the segment or truncating the live file.
    pub fn rotate(&mut self) -> std::io::Result<()> {
        let mut segment = String::new();
        for line in &self.opens {
            segment.push_str(line);
            segment.push('\n');
        }
        for key in &self.order {
            if let Some(line) = self.pending_lines.get(key) {
                segment.push_str(line);
            } else {
                let tenant = self.accepted.get(key).map(String::as_str).unwrap_or("");
                segment.push_str(&settled_marker(key.0, tenant, &key.1));
            }
            segment.push('\n');
        }
        let target = compact_path(&self.prefix);
        let tmp = with_suffix(&self.prefix, ".intents.compact.jsonl.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(segment.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &target)?;
        // Everything the live file held is now in the segment: truncate
        // and start appending fresh.
        self.intents = std::fs::File::create(intents_path(&self.prefix))?;
        self.live_bytes = 0;
        self.rotations += 1;
        self.telemetry.count(Counter::JournalRotation, 1);
        Ok(())
    }

    /// Finalizes both reports (acceptance order, fsync, atomic rename)
    /// and retires the intents files — live and compacted segment
    /// alike; every promise they held is now durable in a finalized
    /// report. Returns the (embed, recognize) report line counts.
    ///
    /// # Errors
    ///
    /// I/O errors finalizing either report.
    pub fn finalize(self) -> std::io::Result<(usize, usize)> {
        let mut embed_ordered = Vec::new();
        let mut recognize_ordered = Vec::new();
        for key in &self.order {
            let Some(report) = self.completed.get(key) else {
                continue;
            };
            match key.0 {
                Op::Embed => embed_ordered.push(report.clone()),
                Op::Recognize => recognize_ordered.push(report.clone()),
            }
        }
        self.embed.finalize(&embed_ordered)?;
        self.recognize.finalize(&recognize_ordered)?;
        let _ = std::fs::remove_file(intents_path(&self.prefix));
        let _ = std::fs::remove_file(compact_path(&self.prefix));
        Ok((embed_ordered.len(), recognize_ordered.len()))
    }
}

/// Accumulates intent lines across journal segments (compact first,
/// then live), rebuilding acceptance order, tenant ownership, opens,
/// and the verbatim lines of jobs that were pending at rotation time.
#[derive(Debug, Default)]
struct IntentScan {
    accepted: HashMap<(Op, String), String>,
    order: Vec<(Op, String)>,
    opens: Vec<String>,
    open_seen: HashSet<String>,
    /// Full request lines seen for a job key — absent for jobs folded
    /// to settled markers.
    job_lines: HashMap<(Op, String), String>,
}

impl IntentScan {
    /// Scans one segment's text, stopping at the first unparseable line
    /// (the torn tail of a live file). Returns the lines kept.
    fn take_lines(&mut self, text: &str) -> Vec<String> {
        let mut kept = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(fields) = parse_object(line) else {
                break;
            };
            kept.push(line.to_string());
            let op = match fields.get("op").and_then(|v| v.as_str()) {
                Some("embed") => Some(Op::Embed),
                Some("recognize") => Some(Op::Recognize),
                Some("open") => {
                    if self.open_seen.insert(line.to_string()) {
                        self.opens.push(line.to_string());
                    }
                    None
                }
                _ => None,
            };
            let (Some(op), Some(job_id)) = (op, fields.get("job_id").and_then(|v| v.as_str()))
            else {
                continue;
            };
            let tenant = fields
                .get("tenant")
                .and_then(|v| v.as_str())
                .unwrap_or_default();
            let key = (op, job_id.to_string());
            if !self.accepted.contains_key(&key) {
                self.accepted.insert(key.clone(), tenant.to_string());
                self.order.push(key.clone());
            }
            let is_marker = fields.get("compact").and_then(|v| v.as_str()) == Some("settled");
            if !is_marker {
                self.job_lines.entry(key).or_insert_with(|| line.to_string());
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_fleet::manifest::{parse_report, JobStatus};

    fn report(op: &str, n: u32) -> JobReport {
        JobReport {
            job_id: format!("{op}-{n:03}"),
            watermark_hex: format!("{n:x}"),
            seed: u64::from(n),
            status: JobStatus::Ok,
            attempts: 1,
            wall_ms: 9,
        }
    }

    fn job_line(n: u32) -> String {
        format!("{{\"op\":\"embed\",\"tenant\":\"t\",\"job_id\":\"embed-{n:03}\"}}")
    }

    fn temp_prefix(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pathmark-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("serve")
    }

    fn cleanup(prefix: &Path) {
        let _ = std::fs::remove_dir_all(prefix.parent().unwrap());
    }

    #[test]
    fn intents_then_outcomes_then_finalize() {
        let prefix = temp_prefix("basic");
        let mut journal = Journal::create(&prefix).unwrap();
        journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
        let a = report("embed", 0);
        let b = report("recognize", 0);
        journal
            .record_job_intent(
                Op::Embed,
                "t",
                &a.job_id,
                "{\"op\":\"embed\",\"tenant\":\"t\",\"job_id\":\"embed-000\"}",
            )
            .unwrap();
        journal
            .record_job_intent(
                Op::Recognize,
                "t",
                &b.job_id,
                "{\"op\":\"recognize\",\"tenant\":\"t\",\"job_id\":\"recognize-000\"}",
            )
            .unwrap();
        assert!(journal.is_accepted(Op::Embed, "embed-000"));
        assert!(!journal.is_accepted(Op::Embed, "recognize-000"), "keyed per op");
        assert_eq!(journal.owner(Op::Embed, "embed-000"), Some("t"));
        assert_eq!(journal.owner(Op::Embed, "missing"), None);
        assert!(journal.completed(Op::Embed, "embed-000").is_none());

        journal.record_outcome(Op::Embed, &a).unwrap();
        journal.record_outcome(Op::Recognize, &b).unwrap();
        assert_eq!(journal.completed(Op::Embed, "embed-000"), Some(&a));
        assert_eq!(journal.completed_count(), 2);

        let (embeds, recognizes) = journal.finalize().unwrap();
        assert_eq!((embeds, recognizes), (1, 1));
        let embed_text =
            std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap();
        assert_eq!(parse_report(&embed_text).unwrap(), vec![a]);
        assert!(
            !intents_path(&prefix).exists(),
            "finalize retires the intents file"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resume_splits_done_from_pending_and_drops_torn_tails() {
        let prefix = temp_prefix("resume");
        {
            let mut journal = Journal::create(&prefix).unwrap();
            journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
            for n in 0..3 {
                let r = report("embed", n);
                journal
                    .record_job_intent(Op::Embed, "t", &r.job_id, &job_line(n))
                    .unwrap();
            }
            // Only job 0 settled before the "crash".
            journal.record_outcome(Op::Embed, &report("embed", 0)).unwrap();
            // Crash: journal dropped without finalize; sidecars stay.
        }
        // Tear the trailing intent line and the outcome sidecar, as a
        // kill -9 mid-write would.
        let intents = intents_path(&prefix);
        let mut text = std::fs::read_to_string(&intents).unwrap();
        text.push_str("{\"op\":\"embed\",\"job_id\":\"embed-9");
        std::fs::write(&intents, &text).unwrap();
        let sidecar = with_suffix(&prefix, ".embed.jsonl.partial");
        let mut text = std::fs::read_to_string(&sidecar).unwrap();
        text.push_str("{\"job_id\":\"embed-0");
        std::fs::write(&sidecar, &text).unwrap();

        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert_eq!(
            replay.len(),
            3,
            "open + the two pending jobs; the settled job and torn tail are not replayed"
        );
        assert!(replay[0].contains("\"open\""));
        assert!(replay[1].contains("embed-001"));
        assert!(replay[2].contains("embed-002"));
        assert!(journal.completed(Op::Embed, "embed-000").is_some());
        assert!(journal.completed(Op::Embed, "embed-001").is_none());
        assert!(journal.is_accepted(Op::Embed, "embed-000"), "settled jobs keep their slot");
        assert!(journal.is_accepted(Op::Embed, "embed-002"));
        assert!(
            !journal.is_accepted(Op::Embed, "embed-9"),
            "the torn intent was never accepted"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resumed_journal_finalizes_in_original_acceptance_order() {
        let prefix = temp_prefix("order");
        {
            let mut journal = Journal::create(&prefix).unwrap();
            for n in 0..3 {
                let r = report("embed", n);
                journal
                    .record_job_intent(Op::Embed, "t", &r.job_id, &job_line(n))
                    .unwrap();
            }
            // Outcomes land out of order (completion order) and only
            // partially (jobs 2 and 0) before the crash.
            journal.record_outcome(Op::Embed, &report("embed", 2)).unwrap();
            journal.record_outcome(Op::Embed, &report("embed", 0)).unwrap();
        }
        let (mut journal, _replay) = Journal::resume(&prefix).unwrap();
        journal.record_outcome(Op::Embed, &report("embed", 1)).unwrap();
        journal.finalize().unwrap();
        let text = std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap();
        let ids: Vec<String> = parse_report(&text)
            .unwrap()
            .into_iter()
            .map(|r| r.job_id)
            .collect();
        assert_eq!(
            ids,
            vec!["embed-000", "embed-001", "embed-002"],
            "acceptance order, not completion order"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resume_with_no_prior_state_is_a_fresh_journal() {
        let prefix = temp_prefix("fresh");
        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert!(replay.is_empty());
        assert_eq!(journal.completed_count(), 0);
        cleanup(&prefix);
    }

    #[test]
    fn rotation_folds_settled_intents_and_bounds_the_live_file() {
        let prefix = temp_prefix("rotate");
        // A threshold small enough that every settled job triggers a
        // rotation.
        let mut journal = Journal::create(&prefix).unwrap().with_max_bytes(Some(64));
        journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
        for n in 0..6 {
            journal
                .record_job_intent(Op::Embed, "t", &format!("embed-{n:03}"), &job_line(n))
                .unwrap();
            if n < 4 {
                journal.record_outcome(Op::Embed, &report("embed", n)).unwrap();
            }
        }
        assert!(journal.rotations() >= 1, "the byte cap forced rotations");
        assert!(
            journal.live_bytes() <= 64 + job_line(0).len() as u64 + 1,
            "the live file never grows much past the cap: {}",
            journal.live_bytes()
        );
        let segment = std::fs::read_to_string(compact_path(&prefix)).unwrap();
        assert!(
            segment.contains("\"compact\":\"settled\""),
            "settled jobs folded to markers: {segment}"
        );
        assert!(segment.starts_with("{\"op\":\"open\""), "opens lead the segment");

        // Resume reads segments in order: settled jobs are answered
        // from the journal, pending jobs 4 and 5 replay with their full
        // lines, acceptance order survives end to end.
        drop(journal);
        let (mut journal, replay) = Journal::resume(&prefix).unwrap();
        assert!(replay[0].contains("\"open\""));
        let replayed: Vec<&String> = replay.iter().filter(|l| l.contains("job_id")).collect();
        assert_eq!(replayed.len(), 2, "only the pending jobs replay: {replay:?}");
        assert!(replayed[0].contains("embed-004") && replayed[1].contains("embed-005"));
        for n in 0..4 {
            assert!(journal.completed(Op::Embed, &format!("embed-{n:03}")).is_some());
        }
        journal.record_outcome(Op::Embed, &report("embed", 4)).unwrap();
        journal.record_outcome(Op::Embed, &report("embed", 5)).unwrap();
        journal.finalize().unwrap();
        let ids: Vec<String> = parse_report(
            &std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap(),
        )
        .unwrap()
        .into_iter()
        .map(|r| r.job_id)
        .collect();
        let want: Vec<String> = (0..6).map(|n| format!("embed-{n:03}")).collect();
        assert_eq!(ids, want, "acceptance order survives rotation + resume");
        assert!(!compact_path(&prefix).exists(), "finalize retires the segment");
        assert!(!intents_path(&prefix).exists());
        cleanup(&prefix);
    }

    #[test]
    fn rotation_counts_into_telemetry_and_repeated_rotations_converge() {
        use pathmark_telemetry::MemorySink;
        use std::sync::Arc;
        let prefix = temp_prefix("rotate-telemetry");
        let sink = Arc::new(MemorySink::new());
        let mut journal = Journal::create(&prefix)
            .unwrap()
            .with_max_bytes(Some(32))
            .with_telemetry(Telemetry::new(sink.clone()));
        for n in 0..4 {
            journal
                .record_job_intent(Op::Embed, "t", &format!("embed-{n:03}"), &job_line(n))
                .unwrap();
            journal.record_outcome(Op::Embed, &report("embed", n)).unwrap();
        }
        assert_eq!(sink.counter(Counter::JournalRotation), journal.rotations());
        assert!(journal.rotations() >= 2);
        // Rotations trigger on intent appends, so the last accepted job
        // is still a full pending line in the segment; an explicit
        // rotation after it settles folds everything.
        journal.rotate().unwrap();
        assert_eq!(sink.counter(Counter::JournalRotation), journal.rotations());
        // Each rotation rewrites the whole segment: with everything
        // settled it is opens + one marker per job, nothing else.
        let segment = std::fs::read_to_string(compact_path(&prefix)).unwrap();
        assert_eq!(segment.lines().count(), 4);
        assert!(segment.lines().all(|l| l.contains("\"compact\":\"settled\"")));
        cleanup(&prefix);
    }

    #[test]
    fn report_sidecars_compact_under_the_byte_cap_and_survive_resume() {
        use pathmark_telemetry::MemorySink;
        use std::sync::Arc;
        let prefix = temp_prefix("report-rotate");
        let sink = Arc::new(MemorySink::new());
        let mut journal = Journal::create(&prefix)
            .unwrap()
            .with_max_bytes(Some(96))
            .with_telemetry(Telemetry::new(sink.clone()));
        for n in 0..8 {
            journal
                .record_job_intent(Op::Embed, "t", &format!("embed-{n:03}"), &job_line(n))
                .unwrap();
            journal.record_outcome(Op::Embed, &report("embed", n)).unwrap();
        }
        assert!(
            journal.report_rotations() >= 1,
            "the byte cap forced report compactions"
        );
        assert_eq!(
            sink.counter(Counter::ReportRotation),
            journal.report_rotations()
        );
        // The live sidecar never grows much past the cap; the folded
        // outcomes live in the rename-atomic `.compact` segment.
        let partial = with_suffix(&prefix, ".embed.jsonl.partial");
        let outcome_line = report("embed", 0).to_line().len() as u64 + 1;
        assert!(
            std::fs::metadata(&partial).unwrap().len() <= 96 + outcome_line,
            "sidecar bounded near the cap"
        );
        assert!(with_suffix(&prefix, ".embed.jsonl.compact").exists());

        // A crashed daemon resumes with every outcome intact and
        // finalizes the full report in acceptance order.
        drop(journal);
        let (journal, _replay) = Journal::resume(&prefix).unwrap();
        assert_eq!(journal.completed_count(), 8);
        journal.finalize().unwrap();
        let ids: Vec<String> = parse_report(
            &std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap(),
        )
        .unwrap()
        .into_iter()
        .map(|r| r.job_id)
        .collect();
        let want: Vec<String> = (0..8).map(|n| format!("embed-{n:03}")).collect();
        assert_eq!(ids, want, "acceptance order survives report compaction");
        assert!(
            !with_suffix(&prefix, ".embed.jsonl.compact").exists(),
            "finalize retires the report segment"
        );
        cleanup(&prefix);
    }

    #[test]
    fn a_crash_between_rotations_loses_nothing() {
        let prefix = temp_prefix("rotate-crash");
        {
            let mut journal = Journal::create(&prefix).unwrap().with_max_bytes(Some(48));
            journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
            // Two jobs settle (forcing at least one rotation), a third
            // is accepted into the post-rotation live file, then the
            // daemon "dies" with a torn live tail.
            for n in 0..2 {
                journal
                    .record_job_intent(Op::Embed, "t", &format!("embed-{n:03}"), &job_line(n))
                    .unwrap();
                journal.record_outcome(Op::Embed, &report("embed", n)).unwrap();
            }
            assert!(journal.rotations() >= 1);
            journal
                .record_job_intent(Op::Embed, "t", "embed-002", &job_line(2))
                .unwrap();
        }
        let live = intents_path(&prefix);
        let mut text = std::fs::read_to_string(&live).unwrap();
        text.push_str("{\"op\":\"embed\",\"job_id\":\"to");
        std::fs::write(&live, &text).unwrap();

        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert!(journal.completed(Op::Embed, "embed-000").is_some());
        assert!(journal.completed(Op::Embed, "embed-001").is_some());
        assert!(journal.is_accepted(Op::Embed, "embed-002"));
        let pending: Vec<&String> = replay.iter().filter(|l| l.contains("job_id")).collect();
        assert_eq!(pending.len(), 1);
        assert!(pending[0].contains("embed-002"));
        cleanup(&prefix);
    }

    #[test]
    fn an_oversized_inherited_live_file_compacts_at_startup() {
        let prefix = temp_prefix("rotate-startup");
        // An uncapped daemon accepts and settles three jobs, then
        // crashes: everything sits in the live file.
        {
            let mut journal = Journal::create(&prefix).unwrap();
            journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
            for n in 0..3 {
                journal
                    .record_job_intent(Op::Embed, "t", &format!("embed-{n:03}"), &job_line(n))
                    .unwrap();
                journal.record_outcome(Op::Embed, &report("embed", n)).unwrap();
            }
        }
        // The successor resumes with a cap the inherited file already
        // exceeds. Every job settled, so no append will ever re-check
        // the threshold — the startup compaction has to do it.
        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert_eq!(replay.len(), 1, "only the open replays");
        let mut journal = journal.with_max_bytes(Some(48));
        journal.compact_if_oversized().unwrap();
        assert_eq!(journal.rotations(), 1);
        assert_eq!(journal.live_bytes(), 0);
        let segment = std::fs::read_to_string(compact_path(&prefix)).unwrap();
        assert_eq!(
            segment.lines().filter(|l| l.contains("\"compact\":\"settled\"")).count(),
            3,
            "the settled jobs fold to markers: {segment}"
        );
        cleanup(&prefix);
    }
}
