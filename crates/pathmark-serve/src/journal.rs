//! The daemon's write-ahead journal: crash-safe exactly-once job
//! execution built from two existing fleet primitives.
//!
//! * An **intents file** (`PREFIX.intents.jsonl`) records every
//!   *accepted* request line — `open` lines and job lines, verbatim,
//!   unbuffered — *before* the job is enqueued. After a crash, the
//!   intents file says what the daemon had promised to do.
//! * Two [`ReportWriter`]s (`PREFIX.embed.jsonl`,
//!   `PREFIX.recognize.jsonl`) double as the outcome log: settled jobs
//!   stream to the `.partial` sidecars exactly as the batch CLI streams
//!   them, and graceful shutdown finalizes both reports with the same
//!   fsync-then-atomic-rename discipline.
//!
//! Resume intersects the two: outcomes already on disk are *done*
//! (duplicate submissions are answered from the journal), intents with
//! no outcome are *pending* and re-run. A torn trailing line in either
//! file — the kill -9 case — is dropped and rewritten away, so the
//! journal a resumed daemon sees is always exactly "what was accepted"
//! and "what finished". Client resubmission after a crash is
//! at-least-once; journal dedup makes execution exactly-once.

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

use pathmark_fleet::json::parse_object;
use pathmark_fleet::manifest::{JobReport, ReportWriter};

use crate::protocol::Op;

/// The write-ahead journal behind one daemon instance.
#[derive(Debug)]
pub struct Journal {
    intents: std::fs::File,
    embed: ReportWriter,
    recognize: ReportWriter,
    /// Outcomes on disk, keyed by (op, job_id) — the dedup map.
    completed: HashMap<(Op, String), JobReport>,
    /// Every job intent ever recorded (completed or pending), mapped to
    /// the tenant that submitted it. Job ids are daemon-unique per op:
    /// the server rejects a second tenant reusing one, so a journaled
    /// outcome is never answered across tenants.
    accepted: HashMap<(Op, String), String>,
    /// Job acceptance order; finalized reports are written in this
    /// order, which is manifest order when a client submits a manifest
    /// top to bottom — the batch bit-identity convention.
    order: Vec<(Op, String)>,
}

fn intents_path(prefix: &Path) -> PathBuf {
    with_suffix(prefix, ".intents.jsonl")
}

fn report_path(prefix: &Path, op: Op) -> PathBuf {
    with_suffix(prefix, &format!(".{}.jsonl", op.as_str()))
}

fn with_suffix(prefix: &Path, suffix: &str) -> PathBuf {
    let mut name = prefix.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    prefix.with_file_name(name)
}

impl Journal {
    /// Starts a fresh journal at `PREFIX.{intents,embed,recognize}.jsonl`,
    /// truncating leftovers from an earlier run.
    ///
    /// # Errors
    ///
    /// Whatever creating the three files reports.
    pub fn create(prefix: &Path) -> std::io::Result<Journal> {
        if let Some(parent) = prefix.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Journal {
            intents: std::fs::File::create(intents_path(prefix))?,
            embed: ReportWriter::create(report_path(prefix, Op::Embed))?,
            recognize: ReportWriter::create(report_path(prefix, Op::Recognize))?,
            completed: HashMap::new(),
            accepted: HashMap::new(),
            order: Vec::new(),
        })
    }

    /// Resumes the journal of a crashed daemon. Returns the journal
    /// (recorded outcomes loaded into the dedup map) plus the raw
    /// accepted request lines in acceptance order — `open` lines and job
    /// lines alike — for the server to replay. A torn trailing line in
    /// the intents file or either outcome sidecar is discarded and
    /// truncated away.
    ///
    /// # Errors
    ///
    /// I/O errors reading or rewriting any journal file.
    pub fn resume(prefix: &Path) -> std::io::Result<(Journal, Vec<String>)> {
        if let Some(parent) = prefix.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let (embed, embed_done) = ReportWriter::resume(report_path(prefix, Op::Embed))?;
        let (recognize, recognize_done) =
            ReportWriter::resume(report_path(prefix, Op::Recognize))?;
        let mut completed = HashMap::new();
        for report in embed_done {
            completed.insert((Op::Embed, report.job_id.clone()), report);
        }
        for report in recognize_done {
            completed.insert((Op::Recognize, report.job_id.clone()), report);
        }

        let path = intents_path(prefix);
        let text = if path.exists() {
            std::fs::read_to_string(&path)?
        } else {
            String::new()
        };
        // The valid prefix: stop at the first line that does not parse
        // (a write torn by the crash). Everything after it was never
        // acknowledged, so dropping it is safe.
        let mut replay = Vec::new();
        let mut accepted = HashMap::new();
        let mut order = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Ok(fields) = parse_object(line) else {
                break;
            };
            let op = match fields.get("op").and_then(|v| v.as_str()) {
                Some("embed") => Some(Op::Embed),
                Some("recognize") => Some(Op::Recognize),
                _ => None,
            };
            if let (Some(op), Some(job_id)) =
                (op, fields.get("job_id").and_then(|v| v.as_str()))
            {
                let tenant = fields
                    .get("tenant")
                    .and_then(|v| v.as_str())
                    .unwrap_or_default();
                let key = (op, job_id.to_string());
                if !accepted.contains_key(&key) {
                    accepted.insert(key.clone(), tenant.to_string());
                    order.push(key);
                }
            }
            replay.push(line.to_string());
        }
        // Rewrite the intents file from the valid prefix, dropping the
        // torn tail, then reopen for appending.
        let mut clean = replay.join("\n");
        if !clean.is_empty() {
            clean.push('\n');
        }
        std::fs::write(&path, &clean)?;
        let intents = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok((
            Journal {
                intents,
                embed,
                recognize,
                completed,
                accepted,
                order,
            },
            replay,
        ))
    }

    /// Records an accepted `open` line so a resumed daemon can rebuild
    /// the tenant before re-running its pending jobs.
    ///
    /// # Errors
    ///
    /// Whatever the append reports.
    pub fn record_open_intent(&mut self, line: &str) -> std::io::Result<()> {
        self.append_intent(line)
    }

    /// Records an accepted job line — the promise that this job will
    /// run. Must be called before the job is enqueued.
    ///
    /// # Errors
    ///
    /// Whatever the append reports.
    pub fn record_job_intent(
        &mut self,
        op: Op,
        tenant: &str,
        job_id: &str,
        line: &str,
    ) -> std::io::Result<()> {
        self.append_intent(line)?;
        let key = (op, job_id.to_string());
        if !self.accepted.contains_key(&key) {
            self.accepted.insert(key.clone(), tenant.to_string());
            self.order.push(key);
        }
        Ok(())
    }

    fn append_intent(&mut self, line: &str) -> std::io::Result<()> {
        let mut owned = line.trim().to_string();
        owned.push('\n');
        // Unbuffered, like the report sidecars: one write per line, so
        // a crash tears at most the line being written.
        self.intents.write_all(owned.as_bytes())
    }

    /// Whether a job intent was ever recorded (settled or still
    /// pending).
    pub fn is_accepted(&self, op: Op, job_id: &str) -> bool {
        self.accepted.contains_key(&(op, job_id.to_string()))
    }

    /// The tenant that submitted a recorded job intent, if any. The
    /// server uses this to refuse a different tenant reusing the id —
    /// the journaled outcome would otherwise leak across tenants.
    pub fn owner(&self, op: Op, job_id: &str) -> Option<&str> {
        self.accepted
            .get(&(op, job_id.to_string()))
            .map(String::as_str)
    }

    /// The journaled outcome of a settled job, if it settled.
    pub fn completed(&self, op: Op, job_id: &str) -> Option<&JobReport> {
        self.completed.get(&(op, job_id.to_string()))
    }

    /// Number of settled jobs on record.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Streams a settled job's outcome to the op's report sidecar and
    /// adds it to the dedup map.
    ///
    /// # Errors
    ///
    /// Whatever the sidecar append reports.
    pub fn record_outcome(&mut self, op: Op, report: &JobReport) -> std::io::Result<()> {
        match op {
            Op::Embed => self.embed.append(report)?,
            Op::Recognize => self.recognize.append(report)?,
        }
        self.completed
            .insert((op, report.job_id.clone()), report.clone());
        Ok(())
    }

    /// Finalizes both reports (acceptance order, fsync, atomic rename)
    /// and retires the intents file — every promise it held is now
    /// durable in a finalized report. Returns the (embed, recognize)
    /// report line counts.
    ///
    /// # Errors
    ///
    /// I/O errors finalizing either report.
    pub fn finalize(self) -> std::io::Result<(usize, usize)> {
        let mut embed_ordered = Vec::new();
        let mut recognize_ordered = Vec::new();
        for key in &self.order {
            let Some(report) = self.completed.get(key) else {
                continue;
            };
            match key.0 {
                Op::Embed => embed_ordered.push(report.clone()),
                Op::Recognize => recognize_ordered.push(report.clone()),
            }
        }
        let intents = self.intents_file_path();
        self.embed.finalize(&embed_ordered)?;
        self.recognize.finalize(&recognize_ordered)?;
        if let Some(path) = intents {
            let _ = std::fs::remove_file(path);
        }
        Ok((embed_ordered.len(), recognize_ordered.len()))
    }

    /// Reconstructs the intents path from the embed report target (the
    /// journal does not store the prefix separately).
    fn intents_file_path(&self) -> Option<PathBuf> {
        let target = self.embed.target_path();
        let name = target.file_name()?.to_str()?;
        let prefix = name.strip_suffix(".embed.jsonl")?;
        Some(target.with_file_name(format!("{prefix}.intents.jsonl")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_fleet::manifest::{parse_report, JobStatus};

    fn report(op: &str, n: u32) -> JobReport {
        JobReport {
            job_id: format!("{op}-{n:03}"),
            watermark_hex: format!("{n:x}"),
            seed: u64::from(n),
            status: JobStatus::Ok,
            attempts: 1,
            wall_ms: 9,
        }
    }

    fn temp_prefix(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pathmark-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("serve")
    }

    fn cleanup(prefix: &Path) {
        let _ = std::fs::remove_dir_all(prefix.parent().unwrap());
    }

    #[test]
    fn intents_then_outcomes_then_finalize() {
        let prefix = temp_prefix("basic");
        let mut journal = Journal::create(&prefix).unwrap();
        journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
        let a = report("embed", 0);
        let b = report("recognize", 0);
        journal
            .record_job_intent(
                Op::Embed,
                "t",
                &a.job_id,
                "{\"op\":\"embed\",\"tenant\":\"t\",\"job_id\":\"embed-000\"}",
            )
            .unwrap();
        journal
            .record_job_intent(
                Op::Recognize,
                "t",
                &b.job_id,
                "{\"op\":\"recognize\",\"tenant\":\"t\",\"job_id\":\"recognize-000\"}",
            )
            .unwrap();
        assert!(journal.is_accepted(Op::Embed, "embed-000"));
        assert!(!journal.is_accepted(Op::Embed, "recognize-000"), "keyed per op");
        assert_eq!(journal.owner(Op::Embed, "embed-000"), Some("t"));
        assert_eq!(journal.owner(Op::Embed, "missing"), None);
        assert!(journal.completed(Op::Embed, "embed-000").is_none());

        journal.record_outcome(Op::Embed, &a).unwrap();
        journal.record_outcome(Op::Recognize, &b).unwrap();
        assert_eq!(journal.completed(Op::Embed, "embed-000"), Some(&a));
        assert_eq!(journal.completed_count(), 2);

        let (embeds, recognizes) = journal.finalize().unwrap();
        assert_eq!((embeds, recognizes), (1, 1));
        let embed_text =
            std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap();
        assert_eq!(parse_report(&embed_text).unwrap(), vec![a]);
        assert!(
            !intents_path(&prefix).exists(),
            "finalize retires the intents file"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resume_splits_done_from_pending_and_drops_torn_tails() {
        let prefix = temp_prefix("resume");
        {
            let mut journal = Journal::create(&prefix).unwrap();
            journal.record_open_intent("{\"op\":\"open\",\"tenant\":\"t\"}").unwrap();
            for n in 0..3 {
                let r = report("embed", n);
                journal
                    .record_job_intent(
                        Op::Embed,
                        "t",
                        &r.job_id,
                        &format!("{{\"op\":\"embed\",\"tenant\":\"t\",\"job_id\":\"embed-{n:03}\"}}"),
                    )
                    .unwrap();
            }
            // Only job 0 settled before the "crash".
            journal.record_outcome(Op::Embed, &report("embed", 0)).unwrap();
            // Crash: journal dropped without finalize; sidecars stay.
        }
        // Tear the trailing intent line and the outcome sidecar, as a
        // kill -9 mid-write would.
        let intents = intents_path(&prefix);
        let mut text = std::fs::read_to_string(&intents).unwrap();
        text.push_str("{\"op\":\"embed\",\"job_id\":\"embed-9");
        std::fs::write(&intents, &text).unwrap();
        let sidecar = with_suffix(&prefix, ".embed.jsonl.partial");
        let mut text = std::fs::read_to_string(&sidecar).unwrap();
        text.push_str("{\"job_id\":\"embed-0");
        std::fs::write(&sidecar, &text).unwrap();

        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert_eq!(replay.len(), 4, "open + three accepted jobs; torn tail dropped");
        assert!(replay[0].contains("\"open\""));
        assert!(journal.completed(Op::Embed, "embed-000").is_some());
        assert!(journal.completed(Op::Embed, "embed-001").is_none());
        assert!(journal.is_accepted(Op::Embed, "embed-002"));
        assert!(
            !journal.is_accepted(Op::Embed, "embed-9"),
            "the torn intent was never accepted"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resumed_journal_finalizes_in_original_acceptance_order() {
        let prefix = temp_prefix("order");
        {
            let mut journal = Journal::create(&prefix).unwrap();
            for n in 0..3 {
                let r = report("embed", n);
                journal
                    .record_job_intent(
                        Op::Embed,
                        "t",
                        &r.job_id,
                        &format!("{{\"op\":\"embed\",\"tenant\":\"t\",\"job_id\":\"embed-{n:03}\"}}"),
                    )
                    .unwrap();
            }
            // Outcomes land out of order (completion order) and only
            // partially (jobs 2 and 0) before the crash.
            journal.record_outcome(Op::Embed, &report("embed", 2)).unwrap();
            journal.record_outcome(Op::Embed, &report("embed", 0)).unwrap();
        }
        let (mut journal, _replay) = Journal::resume(&prefix).unwrap();
        journal.record_outcome(Op::Embed, &report("embed", 1)).unwrap();
        journal.finalize().unwrap();
        let text = std::fs::read_to_string(with_suffix(&prefix, ".embed.jsonl")).unwrap();
        let ids: Vec<String> = parse_report(&text)
            .unwrap()
            .into_iter()
            .map(|r| r.job_id)
            .collect();
        assert_eq!(
            ids,
            vec!["embed-000", "embed-001", "embed-002"],
            "acceptance order, not completion order"
        );
        cleanup(&prefix);
    }

    #[test]
    fn resume_with_no_prior_state_is_a_fresh_journal() {
        let prefix = temp_prefix("fresh");
        let (journal, replay) = Journal::resume(&prefix).unwrap();
        assert!(replay.is_empty());
        assert_eq!(journal.completed_count(), 0);
        cleanup(&prefix);
    }
}
