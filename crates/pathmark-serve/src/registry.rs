//! The warm session registry: one [`Tenant`] per open tenant handle,
//! each owning a validated [`Embedder`]/[`Recognizer`] pair plus a
//! bounded cache of warm per-copy recognize sessions.
//!
//! Why sessions are worth keeping resident: building one derives the
//! key's prime set (Miller–Rabin), the statement enumeration, and the
//! block cipher, and a *used* recognizer additionally accumulates the
//! decode cache — the memoized window→statement map that lets a warm
//! session skip most XTEA work on copies of a host it has seen before.
//! A batch process throws all of that away at exit; the daemon's whole
//! point is not to.
//!
//! Isolation is structural: tenants are distinct map entries holding
//! distinct `SessionCrypto` state, so two tenants never share decode
//! cache entries — even if they open the same key material under two
//! names. The per-copy cache inside a tenant shares *only* within that
//! tenant, keyed by copy seed.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use pathmark_core::java::{
    DecodeCacheStats, Embedder, JavaConfig, Recognizer, DEFAULT_DECODE_CACHE_CAP,
};
use pathmark_core::key::WatermarkKey;
use pathmark_telemetry::{Counter, Telemetry};

use crate::protocol::OpenRequest;

/// Warm per-copy recognize sessions kept per tenant. Past the cap an
/// arbitrary resident session is evicted (its decode cache goes with
/// it); correctness is unaffected, the next use just re-derives.
const MAX_WARM_COPIES: usize = 256;

/// Locks a registry mutex, recovering from poisoning: the guarded maps
/// hold complete entries only (inserts happen after sessions are fully
/// built), so a panicking worker can't leave them half-written.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One tenant's resident state.
#[derive(Debug)]
pub struct Tenant {
    /// The tenant handle, echoed in responses.
    pub name: String,
    /// The tenant's embed session (base key; per-copy keys derive from
    /// it per job, exactly as the batch engine derives them).
    pub embedder: Embedder,
    /// The tenant's recognize session (base key).
    pub recognizer: Recognizer,
    /// Warm per-copy recognize sessions, keyed by copy seed. Re-using
    /// one keeps its decode cache — the warm-session speedup.
    copies: Mutex<HashMap<u64, Recognizer>>,
}

impl Tenant {
    /// A warm recognize session for one copy seed: cached when seen
    /// before ([`Counter::SessionHit`]), derived and cached otherwise
    /// ([`Counter::SessionMiss`]). The returned session's key *is* the
    /// per-copy key, so the single-job kernel's `with_key` hits the
    /// same-key fast path and shares the warm decode cache.
    pub fn recognizer_for(&self, seed: u64) -> Recognizer {
        let telemetry = self.recognizer.telemetry().clone();
        let mut copies = lock(&self.copies);
        if let Some(session) = copies.get(&seed) {
            telemetry.count(Counter::SessionHit, 1);
            return session.clone();
        }
        telemetry.count(Counter::SessionMiss, 1);
        let key = WatermarkKey::new(seed, self.recognizer.key().input.clone());
        let session = self.recognizer.with_key(key);
        if copies.len() >= MAX_WARM_COPIES {
            if let Some(&victim) = copies.keys().next() {
                copies.remove(&victim);
            }
        }
        copies.insert(seed, session.clone());
        session
    }

    /// Warm per-copy sessions currently resident.
    pub fn warm_copies(&self) -> usize {
        lock(&self.copies).len()
    }

    /// Aggregated decode-cache statistics over the tenant's resident
    /// recognize sessions: the base session plus every warm per-copy
    /// session. A per-copy session holding the *base* key shares the
    /// base session's crypto state (the `with_key` same-key fast path)
    /// and is skipped so its numbers are not double-counted.
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        let mut total = self.recognizer.decode_cache_stats();
        let copies = lock(&self.copies);
        for session in copies.values() {
            if session.key() == self.recognizer.key() {
                continue;
            }
            let s = session.decode_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }
}

/// The daemon's tenant map.
#[derive(Debug)]
pub struct Registry {
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    telemetry: Telemetry,
}

impl Registry {
    /// An empty registry whose sessions report into `telemetry`.
    pub fn new(telemetry: Telemetry) -> Registry {
        Registry {
            tenants: Mutex::new(HashMap::new()),
            telemetry,
        }
    }

    /// Opens a tenant: a repeat `open` with identical parameters is a
    /// warm hit (`true`) returning the resident sessions — decode
    /// caches and all; anything else builds and installs fresh sessions
    /// (`false`), replacing a same-named tenant whose parameters
    /// changed.
    ///
    /// # Errors
    ///
    /// The session builders' validation message (empty secret input,
    /// incoherent config).
    pub fn open(&self, request: &OpenRequest) -> Result<(Arc<Tenant>, bool), String> {
        let key = WatermarkKey::new(request.seed, request.input.clone());
        let base = JavaConfig::for_watermark_bits(request.bits);
        let pieces = request.pieces.unwrap_or(base.num_pieces);
        let config = base.with_pieces(pieces);
        let cap = request.cache_cap.unwrap_or(DEFAULT_DECODE_CACHE_CAP);
        let tier = request.tier.unwrap_or_default();
        let scan_mode = request.scan_mode.unwrap_or_default();

        let mut tenants = lock(&self.tenants);
        if let Some(tenant) = tenants.get(&request.tenant) {
            if tenant.embedder.key() == &key
                && tenant.embedder.config() == &config
                && tenant.embedder.decode_cache_cap() == cap
                && tenant.embedder.exec_tier() == tier
                && tenant.recognizer.scan_mode() == scan_mode
            {
                self.telemetry.count(Counter::SessionHit, 1);
                return Ok((Arc::clone(tenant), true));
            }
        }
        self.telemetry.count(Counter::SessionMiss, 1);
        let embedder = Embedder::builder(key.clone(), config.clone())
            .telemetry(self.telemetry.clone())
            .decode_cache_cap(cap)
            .exec_tier(tier)
            .scan_mode(scan_mode)
            .build()
            .map_err(|e| e.to_string())?;
        let recognizer = Recognizer::builder(key, config)
            .telemetry(self.telemetry.clone())
            .decode_cache_cap(cap)
            .exec_tier(tier)
            .scan_mode(scan_mode)
            .build()
            .map_err(|e| e.to_string())?;
        let tenant = Arc::new(Tenant {
            name: request.tenant.clone(),
            embedder,
            recognizer,
            copies: Mutex::new(HashMap::new()),
        });
        tenants.insert(request.tenant.clone(), Arc::clone(&tenant));
        Ok((tenant, false))
    }

    /// The tenant behind a handle, if open.
    pub fn get(&self, tenant: &str) -> Option<Arc<Tenant>> {
        lock(&self.tenants).get(tenant).cloned()
    }

    /// Open tenants.
    pub fn count(&self) -> usize {
        lock(&self.tenants).len()
    }

    /// Decode-cache statistics summed over every open tenant (tenants
    /// never share crypto state, so a plain sum never double-counts).
    pub fn decode_cache_stats(&self) -> DecodeCacheStats {
        let tenants: Vec<Arc<Tenant>> = lock(&self.tenants).values().cloned().collect();
        let mut total = DecodeCacheStats::default();
        for tenant in tenants {
            let s = tenant.decode_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
            total.entries += s.entries;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_core::ScanMode;
    use pathmark_telemetry::MemorySink;
    use stackvm::ExecTier;

    fn open_request(tenant: &str, seed: u64) -> OpenRequest {
        OpenRequest {
            tenant: tenant.to_string(),
            seed,
            input: vec![3, 1, 4],
            bits: 64,
            pieces: Some(12),
            cache_cap: None,
            tier: None,
            scan_mode: None,
        }
    }

    #[test]
    fn repeat_open_is_a_warm_hit_and_changed_params_rebuild() {
        let sink = Arc::new(MemorySink::new());
        let registry = Registry::new(Telemetry::new(sink.clone()));
        let (first, warm) = registry.open(&open_request("acme", 7)).unwrap();
        assert!(!warm);
        let (second, warm) = registry.open(&open_request("acme", 7)).unwrap();
        assert!(warm, "identical params hit the resident sessions");
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(sink.counter(Counter::SessionHit), 1);

        let (third, warm) = registry.open(&open_request("acme", 8)).unwrap();
        assert!(!warm, "a re-keyed tenant rebuilds");
        assert!(!Arc::ptr_eq(&first, &third));
        assert_eq!(registry.count(), 1, "replaced, not duplicated");

        // The execution tier is part of the warm-hit identity: the
        // default request resolved to the compiled tier, so asking for
        // the predecoded engine rebuilds the sessions.
        let mut retier = open_request("acme", 8);
        retier.tier = Some(ExecTier::Predecoded);
        let (fourth, warm) = registry.open(&retier).unwrap();
        assert!(!warm, "a re-tiered tenant rebuilds");
        assert!(!Arc::ptr_eq(&third, &fourth));
        assert_eq!(fourth.recognizer.exec_tier(), ExecTier::Predecoded);
        // Per-copy sessions inherit the tenant's tier via `with_key`.
        assert_eq!(
            fourth.recognizer_for(42).exec_tier(),
            ExecTier::Predecoded
        );

        // The scan mode is likewise part of the warm-hit identity: the
        // default request resolved to the fused scan, so asking for the
        // two-phase scan rebuilds the sessions — and per-copy sessions
        // inherit the tenant's mode via `with_key`.
        let mut remode = retier.clone();
        remode.scan_mode = Some(ScanMode::TwoPhase);
        let (fifth, warm) = registry.open(&remode).unwrap();
        assert!(!warm, "a re-scan-moded tenant rebuilds");
        assert!(!Arc::ptr_eq(&fourth, &fifth));
        assert_eq!(fifth.recognizer.scan_mode(), ScanMode::TwoPhase);
        assert_eq!(fifth.recognizer_for(42).scan_mode(), ScanMode::TwoPhase);
        let (again, warm) = registry.open(&remode).unwrap();
        assert!(warm, "an identical re-open is a warm hit");
        assert!(Arc::ptr_eq(&fifth, &again));
    }

    #[test]
    fn open_rejects_invalid_sessions_with_a_message() {
        let registry = Registry::new(Telemetry::null());
        let mut bad = open_request("acme", 7);
        bad.input = Vec::new();
        let err = registry.open(&bad).unwrap_err();
        assert!(!err.is_empty());
        assert!(registry.get("acme").is_none(), "nothing installed on failure");
    }

    #[test]
    fn tenants_are_isolated_map_entries() {
        let registry = Registry::new(Telemetry::null());
        let (a, _) = registry.open(&open_request("a", 7)).unwrap();
        let (b, _) = registry.open(&open_request("b", 8)).unwrap();
        assert_eq!(registry.count(), 2);
        assert_ne!(a.embedder.key(), b.embedder.key());
        // Same key material under two names still means two resident
        // session sets — no cross-tenant sharing, by construction.
        let (c, warm) = registry.open(&open_request("c", 7)).unwrap();
        assert!(!warm);
        assert_eq!(c.embedder.key(), a.embedder.key());
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn per_copy_sessions_are_cached_per_seed() {
        let sink = Arc::new(MemorySink::new());
        let registry = Registry::new(Telemetry::new(sink.clone()));
        let (tenant, _) = registry.open(&open_request("acme", 7)).unwrap();
        let before = sink.counter(Counter::SessionMiss);
        let first = tenant.recognizer_for(99);
        assert_eq!(sink.counter(Counter::SessionMiss), before + 1);
        let again = tenant.recognizer_for(99);
        assert_eq!(sink.counter(Counter::SessionHit), 1);
        assert_eq!(first.key(), again.key());
        assert_eq!(tenant.warm_copies(), 1);
        tenant.recognizer_for(100);
        assert_eq!(tenant.warm_copies(), 2);
    }
}
