//! The serve wire protocol: line-oriented JSONL, one flat object per
//! line, built on the fleet's hand-rolled codec
//! ([`pathmark_fleet::json`]).
//!
//! Requests name an `op`:
//!
//! ```text
//! {"op":"open","tenant":"acme","seed":61423,"input":"3,1,4","bits":64,"pieces":12}
//! {"op":"embed","tenant":"acme","job_id":"copy-0","host":"host.pmvm","out_dir":"marked"}
//! {"op":"recognize","tenant":"acme","job_id":"copy-0","program":"marked/copy-0.pmvm"}
//! {"op":"ping"}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! Job requests carry the same optional `seed` / `watermark_hex`
//! overrides as a fleet manifest line — a serve job and a batch job
//! resolve their per-copy key and watermark through the *same*
//! [`EmbedJobSpec`] rules, which is what makes their reports
//! bit-identical (modulo `wall_ms`).
//!
//! Responses echo the `op` and carry a `status`. Job responses embed the
//! full [`JobReport`] fields plus a `disposition` (`fresh` for a job the
//! daemon just ran, `resumed` for one answered from the journal). A
//! malformed line yields `{"op":"error","status":"failed: …"}` — never a
//! daemon exit. An admission-controlled rejection yields the distinct
//! `"status":"shed"` so clients can back off and resubmit; its `scope`
//! field says whether the whole daemon was at capacity (`"capacity"`)
//! or the submitting tenant exceeded its fair share (`"tenant"`).

use std::collections::HashMap;

use pathmark_core::ScanMode;
use pathmark_fleet::json::{parse_object, write_object, Scalar};
use pathmark_fleet::manifest::{EmbedJobSpec, JobReport};
use stackvm::ExecTier;

/// Which journal/report stream a job belongs to. Part of the journal
/// dedup key: one `job_id` may legally appear once per op (embed a copy,
/// then recognize it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Fingerprint a copy of the host program.
    Embed,
    /// Recognize the watermark in a (possibly attacked) copy.
    Recognize,
}

impl Op {
    /// The wire name of the op.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::Embed => "embed",
            Op::Recognize => "recognize",
        }
    }
}

/// `{"op":"open", …}` — create (or warm-hit) a tenant's sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenRequest {
    /// The tenant handle later job requests refer to.
    pub tenant: String,
    /// The tenant key's numeric secret.
    pub seed: u64,
    /// The tenant key's secret input, comma-separated (e.g. `"3,1,4"`).
    pub input: Vec<i64>,
    /// Watermark width in bits.
    pub bits: usize,
    /// Watermark piece count; `None` takes the config default.
    pub pieces: Option<usize>,
    /// Decode-cache ceiling for the tenant's sessions; `None` takes
    /// [`pathmark_core::java::DEFAULT_DECODE_CACHE_CAP`].
    pub cache_cap: Option<usize>,
    /// Execution tier for the tenant's tracer (`"reference"` /
    /// `"predecoded"` / `"compiled"`); `None` takes the stackvm default
    /// (compiled).
    pub tier: Option<ExecTier>,
    /// Scan strategy for the tenant's recognizer (`"fused"` /
    /// `"two-phase"`); `None` takes the default (fused).
    pub scan_mode: Option<ScanMode>,
}

/// `{"op":"embed", …}` — fingerprint one copy of a host program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedRequest {
    /// The tenant whose sessions run the job.
    pub tenant: String,
    /// The manifest-line view of the job (`job_id` + optional `seed` /
    /// `watermark_hex` overrides).
    pub spec: EmbedJobSpec,
    /// Path to the host program (`.pmvm`).
    pub host: String,
    /// Directory the marked copy is written into, as `<job_id>.pmvm`.
    pub out_dir: String,
}

/// `{"op":"recognize", …}` — recognize the watermark in one copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizeRequest {
    /// The tenant whose sessions run the job.
    pub tenant: String,
    /// The manifest-line view of the job; the expected watermark is
    /// resolved from it exactly as `fleet recognize` resolves it.
    pub spec: EmbedJobSpec,
    /// Path to the copy to recognize (`.pmvm`).
    pub program: String,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Open (or warm-hit) a tenant.
    Open(OpenRequest),
    /// Run an embed job.
    Embed(EmbedRequest),
    /// Run a recognize job.
    Recognize(RecognizeRequest),
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Drain the queue, finalize the journal, and exit.
    Shutdown,
}

fn opt_str(fields: &HashMap<String, Scalar>, name: &str) -> Result<Option<String>, String> {
    match fields.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("`{name}` must be a string")),
    }
}

fn req_str(fields: &HashMap<String, Scalar>, name: &str) -> Result<String, String> {
    opt_str(fields, name)?.ok_or_else(|| format!("missing `{name}`"))
}

fn opt_u64(fields: &HashMap<String, Scalar>, name: &str) -> Result<Option<u64>, String> {
    match fields.get(name) {
        None => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{name}` must be an unsigned integer")),
    }
}

fn req_u64(fields: &HashMap<String, Scalar>, name: &str) -> Result<u64, String> {
    opt_u64(fields, name)?.ok_or_else(|| format!("missing `{name}`"))
}

/// Parses the comma-separated secret-input encoding (`"3,1,4"`; empty
/// string = empty input, which `open` will then reject at session
/// validation).
fn parse_input(text: &str) -> Result<Vec<i64>, String> {
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|v| {
            v.trim()
                .parse()
                .map_err(|e| format!("bad `input` element `{v}`: {e}"))
        })
        .collect()
}

fn render_input(input: &[i64]) -> String {
    input
        .iter()
        .map(i64::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// The shared `job_id` / `seed` / `watermark_hex` trio of a job request.
fn parse_spec(fields: &HashMap<String, Scalar>) -> Result<EmbedJobSpec, String> {
    Ok(EmbedJobSpec {
        job_id: req_str(fields, "job_id")?,
        watermark_hex: opt_str(fields, "watermark_hex")?,
        seed: opt_u64(fields, "seed")?,
    })
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A message describing the defect (malformed JSON with the byte
    /// offset, a missing or mistyped field, or an unknown op). The
    /// server turns this into an `error` response, never an exit.
    pub fn parse(line: &str) -> Result<Request, String> {
        let fields = parse_object(line).map_err(|e| e.to_string())?;
        let op = fields
            .get("op")
            .and_then(Scalar::as_str)
            .ok_or("missing string `op`")?;
        match op {
            "open" => Ok(Request::Open(OpenRequest {
                tenant: req_str(&fields, "tenant")?,
                seed: req_u64(&fields, "seed")?,
                input: parse_input(&req_str(&fields, "input")?)?,
                bits: req_u64(&fields, "bits")? as usize,
                pieces: opt_u64(&fields, "pieces")?.map(|n| n as usize),
                cache_cap: opt_u64(&fields, "cache_cap")?.map(|n| n as usize),
                tier: match opt_str(&fields, "tier")? {
                    None => None,
                    Some(name) => Some(
                        ExecTier::parse(&name)
                            .ok_or_else(|| format!("unknown `tier` `{name}`"))?,
                    ),
                },
                scan_mode: match opt_str(&fields, "scan_mode")? {
                    None => None,
                    Some(name) => Some(
                        ScanMode::parse(&name)
                            .ok_or_else(|| format!("unknown `scan_mode` `{name}`"))?,
                    ),
                },
            })),
            "embed" => Ok(Request::Embed(EmbedRequest {
                tenant: req_str(&fields, "tenant")?,
                spec: parse_spec(&fields)?,
                host: req_str(&fields, "host")?,
                out_dir: req_str(&fields, "out_dir")?,
            })),
            "recognize" => Ok(Request::Recognize(RecognizeRequest {
                tenant: req_str(&fields, "tenant")?,
                spec: parse_spec(&fields)?,
                program: req_str(&fields, "program")?,
            })),
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

impl OpenRequest {
    /// Serializes the request as one JSONL line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("op", Scalar::Str("open".into())),
            ("tenant", Scalar::Str(self.tenant.clone())),
            ("seed", Scalar::Num(self.seed)),
            ("input", Scalar::Str(render_input(&self.input))),
            ("bits", Scalar::Num(self.bits as u64)),
        ];
        if let Some(pieces) = self.pieces {
            fields.push(("pieces", Scalar::Num(pieces as u64)));
        }
        if let Some(cap) = self.cache_cap {
            fields.push(("cache_cap", Scalar::Num(cap as u64)));
        }
        if let Some(tier) = self.tier {
            fields.push(("tier", Scalar::Str(tier.as_str().into())));
        }
        if let Some(mode) = self.scan_mode {
            fields.push(("scan_mode", Scalar::Str(mode.as_str().into())));
        }
        write_object(&fields)
    }
}

fn spec_fields(spec: &EmbedJobSpec, fields: &mut Vec<(&str, Scalar)>) {
    fields.push(("job_id", Scalar::Str(spec.job_id.clone())));
    if let Some(seed) = spec.seed {
        fields.push(("seed", Scalar::Num(seed)));
    }
    if let Some(hex) = &spec.watermark_hex {
        fields.push(("watermark_hex", Scalar::Str(hex.clone())));
    }
}

impl EmbedRequest {
    /// Serializes the request as one JSONL line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("op", Scalar::Str("embed".into())),
            ("tenant", Scalar::Str(self.tenant.clone())),
        ];
        spec_fields(&self.spec, &mut fields);
        fields.push(("host", Scalar::Str(self.host.clone())));
        fields.push(("out_dir", Scalar::Str(self.out_dir.clone())));
        write_object(&fields)
    }
}

impl RecognizeRequest {
    /// Serializes the request as one JSONL line.
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("op", Scalar::Str("recognize".into())),
            ("tenant", Scalar::Str(self.tenant.clone())),
        ];
        spec_fields(&self.spec, &mut fields);
        fields.push(("program", Scalar::Str(self.program.clone())));
        write_object(&fields)
    }
}

/// Whether a job response was freshly computed or replayed from the
/// journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The daemon ran the job for this response.
    Fresh,
    /// The job's outcome was already journaled (a duplicate submission
    /// after a crash); the recorded report is echoed back.
    Resumed,
}

impl Disposition {
    fn as_str(self) -> &'static str {
        match self {
            Disposition::Fresh => "fresh",
            Disposition::Resumed => "resumed",
        }
    }
}

/// Renders an `open` response.
pub fn opened_line(tenant: &str, warm: bool) -> String {
    write_object(&[
        ("op", Scalar::Str("open".into())),
        ("tenant", Scalar::Str(tenant.into())),
        ("status", Scalar::Str("ok".into())),
        (
            "warm",
            Scalar::Str(if warm { "hit" } else { "miss" }.into()),
        ),
    ])
}

/// Renders a settled job response: the full report line plus the op,
/// tenant, and disposition.
pub fn job_line(op: Op, tenant: &str, report: &JobReport, disposition: Disposition) -> String {
    write_object(&[
        ("op", Scalar::Str(op.as_str().into())),
        ("tenant", Scalar::Str(tenant.into())),
        ("job_id", Scalar::Str(report.job_id.clone())),
        ("watermark_hex", Scalar::Str(report.watermark_hex.clone())),
        ("seed", Scalar::Num(report.seed)),
        ("status", Scalar::Str(report.status.to_string())),
        ("attempts", Scalar::Num(u64::from(report.attempts))),
        ("wall_ms", Scalar::Num(report.wall_ms)),
        ("disposition", Scalar::Str(disposition.as_str().into())),
    ])
}

/// Renders the load-shed rejection: the job was NOT accepted and the
/// client should back off and resubmit. `scope` is `"capacity"` (the
/// daemon-wide in-flight ceiling) or `"tenant"` (the submitting
/// tenant's fair-share sub-budget — other tenants still have room).
pub fn shed_line(op: Op, tenant: &str, job_id: &str, scope: &str) -> String {
    write_object(&[
        ("op", Scalar::Str(op.as_str().into())),
        ("tenant", Scalar::Str(tenant.into())),
        ("job_id", Scalar::Str(job_id.into())),
        ("status", Scalar::Str("shed".into())),
        ("scope", Scalar::Str(scope.into())),
    ])
}

/// Renders the structured error response for a malformed or unservable
/// request line.
pub fn error_line(message: &str) -> String {
    write_object(&[
        ("op", Scalar::Str("error".into())),
        ("status", Scalar::Str(format!("failed: {message}"))),
    ])
}

/// Renders the `ping` response.
pub fn pong_line() -> String {
    write_object(&[
        ("op", Scalar::Str("ping".into())),
        ("status", Scalar::Str("ok".into())),
    ])
}

/// A point-in-time counter snapshot for the `stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs admitted past the gate over the daemon's lifetime.
    pub accepted: u64,
    /// Jobs rejected because the daemon-wide in-flight ceiling was
    /// reached.
    pub shed: u64,
    /// Jobs rejected by per-tenant fairness while the daemon still had
    /// room.
    pub tenant_shed: u64,
    /// Duplicate submissions answered from the journal.
    pub resumed: u64,
    /// Jobs that settled and were journaled.
    pub completed: u64,
    /// Jobs admitted but not yet settled.
    pub inflight: u64,
    /// Jobs sitting in the worker pool's queue right now.
    pub queue_depth: u64,
    /// Open tenants.
    pub tenants: u64,
    /// Connections currently being served.
    pub connections: u64,
    /// Journal rotations performed (settled intents folded into the
    /// compacted segment).
    pub journal_rotations: u64,
    /// Report-sidecar compactions performed (settled outcomes folded
    /// into the per-op `.compact` segments).
    pub report_rotations: u64,
    /// Decode-cache lookups served without a cipher call, summed over
    /// every resident recognize session.
    pub decode_cache_hits: u64,
    /// Decode-cache lookups that missed and decrypted.
    pub decode_cache_misses: u64,
    /// Decode-cache entries evicted to stay under the caps.
    pub decode_cache_evictions: u64,
    /// Decode-cache entries currently resident across sessions.
    pub decode_cache_entries: u64,
}

/// Renders the `stats` response.
pub fn stats_line(s: &StatsSnapshot) -> String {
    write_object(&[
        ("op", Scalar::Str("stats".into())),
        ("status", Scalar::Str("ok".into())),
        ("accepted", Scalar::Num(s.accepted)),
        ("shed", Scalar::Num(s.shed)),
        ("tenant_shed", Scalar::Num(s.tenant_shed)),
        ("resumed", Scalar::Num(s.resumed)),
        ("completed", Scalar::Num(s.completed)),
        ("inflight", Scalar::Num(s.inflight)),
        ("queue_depth", Scalar::Num(s.queue_depth)),
        ("tenants", Scalar::Num(s.tenants)),
        ("connections", Scalar::Num(s.connections)),
        ("journal_rotations", Scalar::Num(s.journal_rotations)),
        ("report_rotations", Scalar::Num(s.report_rotations)),
        ("decode_cache_hits", Scalar::Num(s.decode_cache_hits)),
        ("decode_cache_misses", Scalar::Num(s.decode_cache_misses)),
        ("decode_cache_evictions", Scalar::Num(s.decode_cache_evictions)),
        ("decode_cache_entries", Scalar::Num(s.decode_cache_entries)),
    ])
}

/// Renders the `shutdown` acknowledgement, sent after the queue has
/// drained and the journal is finalized.
pub fn shutdown_line(completed: u64) -> String {
    write_object(&[
        ("op", Scalar::Str("shutdown".into())),
        ("status", Scalar::Str("ok".into())),
        ("completed", Scalar::Num(completed)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_fleet::manifest::JobStatus;

    #[test]
    fn open_round_trips() {
        let req = OpenRequest {
            tenant: "acme".into(),
            seed: 61423,
            input: vec![3, -1, 4],
            bits: 64,
            pieces: Some(12),
            cache_cap: Some(4096),
            tier: Some(ExecTier::Predecoded),
            scan_mode: Some(ScanMode::TwoPhase),
        };
        assert_eq!(Request::parse(&req.to_line()), Ok(Request::Open(req)));
        // Optional fields stay optional.
        let line = "{\"op\":\"open\",\"tenant\":\"t\",\"seed\":1,\"input\":\"5\",\"bits\":64}";
        match Request::parse(line).unwrap() {
            Request::Open(req) => {
                assert_eq!(req.input, vec![5]);
                assert_eq!(req.pieces, None);
                assert_eq!(req.cache_cap, None);
                assert_eq!(req.tier, None);
                assert_eq!(req.scan_mode, None);
            }
            other => panic!("{other:?}"),
        }
        // A bogus tier is a parse error, not a silent default.
        let line =
            "{\"op\":\"open\",\"tenant\":\"t\",\"seed\":1,\"input\":\"5\",\"bits\":64,\"tier\":\"jit\"}";
        assert!(Request::parse(line).unwrap_err().contains("tier"));
        // Likewise a bogus scan mode.
        let line = "{\"op\":\"open\",\"tenant\":\"t\",\"seed\":1,\"input\":\"5\",\"bits\":64,\"scan_mode\":\"triple\"}";
        assert!(Request::parse(line).unwrap_err().contains("scan_mode"));
    }

    #[test]
    fn job_requests_round_trip() {
        let embed = EmbedRequest {
            tenant: "acme".into(),
            spec: EmbedJobSpec {
                job_id: "copy-0".into(),
                watermark_hex: Some("8f3a".into()),
                seed: Some(99),
            },
            host: "host.pmvm".into(),
            out_dir: "marked".into(),
        };
        assert_eq!(Request::parse(&embed.to_line()), Ok(Request::Embed(embed)));

        let recognize = RecognizeRequest {
            tenant: "acme".into(),
            spec: EmbedJobSpec::new("copy-0"),
            program: "marked/copy-0.pmvm".into(),
        };
        assert_eq!(
            Request::parse(&recognize.to_line()),
            Ok(Request::Recognize(recognize))
        );
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(Request::parse("{\"op\":\"ping\"}"), Ok(Request::Ping));
        assert_eq!(Request::parse("{\"op\":\"stats\"}"), Ok(Request::Stats));
        assert_eq!(
            Request::parse("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown)
        );
    }

    #[test]
    fn malformed_lines_produce_messages_not_panics() {
        for line in [
            "",
            "not json",
            "{\"op\":\"embed\"}",
            "{\"op\":\"teleport\"}",
            "{\"tenant\":\"t\"}",
            "{\"op\":\"open\",\"tenant\":\"t\",\"seed\":\"x\",\"input\":\"1\",\"bits\":64}",
            "{\"op\":\"open\",\"tenant\":\"t\",\"seed\":1,\"input\":\"a,b\",\"bits\":64}",
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(!err.is_empty(), "line {line:?}");
        }
    }

    #[test]
    fn responses_are_parseable_flat_objects() {
        let report = JobReport {
            job_id: "copy-0".into(),
            watermark_hex: "ff".into(),
            seed: 7,
            status: JobStatus::Ok,
            attempts: 1,
            wall_ms: 3,
        };
        for line in [
            opened_line("t", true),
            job_line(Op::Embed, "t", &report, Disposition::Fresh),
            job_line(Op::Recognize, "t", &report, Disposition::Resumed),
            shed_line(Op::Embed, "t", "copy-0", "capacity"),
            error_line("json error at byte 0: expected `{`"),
            pong_line(),
            stats_line(&StatsSnapshot::default()),
            shutdown_line(4),
        ] {
            let fields = parse_object(&line).unwrap();
            assert!(fields.contains_key("op"), "{line}");
        }
        let fields = parse_object(&shed_line(Op::Embed, "t", "j", "tenant")).unwrap();
        assert_eq!(fields["status"].as_str(), Some("shed"));
        assert_eq!(fields["scope"].as_str(), Some("tenant"));
        let fields =
            parse_object(&job_line(Op::Recognize, "t", &report, Disposition::Resumed)).unwrap();
        assert_eq!(fields["disposition"].as_str(), Some("resumed"));
    }
}
