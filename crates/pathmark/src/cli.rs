//! Shared command-line conventions.
//!
//! Every recognition-style entry point (`pathmark recognize`,
//! `pathmark fleet recognize`, scripted callers of either) speaks the
//! same three-way exit protocol; [`ExitStatus`] is that protocol as a
//! type, so the binary and the scripts cannot drift apart.

use std::process::ExitCode;

/// Process exit discipline of the `pathmark` CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// Everything succeeded (recognition recovered every expected
    /// watermark): exit code 0.
    Success,
    /// Bad flags, unreadable files, invalid configuration, or a
    /// processing failure: exit code 1.
    Failure,
    /// Recognition ran to completion but did not recover the (expected)
    /// watermark on at least one copy: exit code 2.
    NotRecovered,
}

impl ExitStatus {
    /// The numeric exit code.
    pub fn code(self) -> u8 {
        match self {
            ExitStatus::Success => 0,
            ExitStatus::Failure => 1,
            ExitStatus::NotRecovered => 2,
        }
    }

    /// The verdict for a recognition run that recovered `recovered` of
    /// `total` expected watermarks: [`ExitStatus::Success`] only when
    /// all were recovered — and there was at least one to recover. An
    /// empty job set is a [`ExitStatus::Failure`]: a run that verified
    /// nothing must not exit 0, or a typo'd manifest path in a
    /// verification script reads as "all copies verified".
    pub fn for_recognition(recovered: usize, total: usize) -> ExitStatus {
        if total == 0 {
            ExitStatus::Failure
        } else if recovered >= total {
            ExitStatus::Success
        } else {
            ExitStatus::NotRecovered
        }
    }
}

impl From<ExitStatus> for ExitCode {
    fn from(status: ExitStatus) -> ExitCode {
        ExitCode::from(status.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_the_documented_protocol() {
        assert_eq!(ExitStatus::Success.code(), 0);
        assert_eq!(ExitStatus::Failure.code(), 1);
        assert_eq!(ExitStatus::NotRecovered.code(), 2);
    }

    #[test]
    fn recognition_verdicts() {
        assert_eq!(ExitStatus::for_recognition(1, 1), ExitStatus::Success);
        assert_eq!(ExitStatus::for_recognition(16, 16), ExitStatus::Success);
        assert_eq!(ExitStatus::for_recognition(15, 16), ExitStatus::NotRecovered);
        assert_eq!(ExitStatus::for_recognition(0, 1), ExitStatus::NotRecovered);
    }

    #[test]
    fn empty_recognition_run_is_a_failure_not_a_success() {
        // Regression: `recovered >= total` used to make a zero-job run
        // exit 0, so a verification script pointed at an empty (or
        // mistyped) manifest would report every copy verified.
        assert_eq!(ExitStatus::for_recognition(0, 0), ExitStatus::Failure);
    }
}
