//! `pathmark` — command-line driver for path-based watermarking.
//!
//! Programs are stored in the `stackvm` binary codec (`.pmvm`). The
//! secret key is a `--seed` integer plus a comma-separated `--input`
//! sequence; keep both secret.
//!
//! ```text
//! pathmark demo --out demo.pmvm          write a sample program
//! pathmark embed --program P --out Q --seed S --input I --bits B [--pieces N] [--watermark HEX]
//! pathmark recognize --program Q --seed S --input I --bits B
//! pathmark run --program P [--input I]   execute and print output
//! pathmark attack --program Q --out R --kind K [--count N] [--seed S]
//! pathmark disasm --program P            disassembly listing
//! pathmark fleet embed --program P --manifest M --out-dir D --workers K --seed S --input I --bits B
//! pathmark fleet recognize --dir D --manifest M --workers K --seed S --input I --bits B
//! pathmark serve --journal PREFIX [--socket PATH] [--max-inflight N] [--resume]
//! pathmark connect --socket PATH
//! ```
//!
//! `serve` runs the resident daemon: warm embed/recognize sessions per
//! tenant behind a line-oriented JSONL protocol (see `DESIGN.md` §11),
//! with admission control and a crash-safe write-ahead journal;
//! `connect` is its scripting client.
//!
//! `embed`, `recognize` and both `fleet` subcommands additionally take
//! `--metrics FILE [--metrics-format jsonl|summary]` to capture
//! stage-level telemetry (trace, encrypt, codegen, scan, vote, merge,
//! queue-wait, …) from the run; without the flag the pipeline runs with
//! the zero-cost disabled handle.
//!
//! Both `fleet` subcommands take fault-tolerance flags: `--retries N`
//! re-runs a job up to N extra times after a transient failure (panic),
//! `--job-timeout MS` abandons a job that overruns its deadline
//! (reported as `timed-out`, its worker replaced), and `--resume` skips
//! jobs whose outcome lines already exist in the (crash-safe, partially
//! written) report from an interrupted run. `fleet recognize` persists
//! its report via `--report FILE`, which `--resume` requires.
//!
//! Exit codes: `0` success, `1` usage or processing error, `2`
//! recognition ran but did not recover the expected watermark (see
//! [`pathmark::cli::ExitStatus`]).

use std::collections::{HashMap, HashSet};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pathmark::attacks::java as attacks;
use pathmark::cli::ExitStatus;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::core::ScanMode;
use pathmark::fleet::batch::{embed_batch_with, recognize_batch_with, BatchOptions, RecognizeJob};
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::manifest::{parse_manifest, to_hex, EmbedJobSpec, JobReport, ReportWriter};
use pathmark::fleet::pool::WorkerPool;
use pathmark::fleet::retry::RetryPolicy;
use pathmark::math::bigint::BigUint;
use pathmark::telemetry::{JsonlSink, MemorySink, Telemetry};
use pathmark::vm::interp::Vm;
use pathmark::vm::{ExecTier, Program};

/// Why the CLI failed — split so recognition misses get their own exit
/// code, distinguishable from bad invocations in scripts.
enum CliError {
    /// Bad flags, unreadable files, or a processing failure: exit 1.
    Usage(String),
    /// Recognition completed but the watermark was not recovered (the
    /// machine-readable `RESULT` line is already printed): exit 2.
    NotFound,
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Usage(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let status = match run(&args) {
        Ok(()) => ExitStatus::Success,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}");
            eprintln!("run `pathmark help` for usage");
            ExitStatus::Failure
        }
        Err(CliError::NotFound) => ExitStatus::NotRecovered,
    };
    status.into()
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("no command given".into()));
    };
    if command == "fleet" {
        return cmd_fleet(&args[1..]);
    }
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        "demo" => cmd_demo(&opts).map_err(CliError::from),
        "embed" => cmd_embed(&opts).map_err(CliError::from),
        "recognize" => cmd_recognize(&opts),
        "run" => cmd_run(&opts).map_err(CliError::from),
        "attack" => cmd_attack(&opts).map_err(CliError::from),
        "disasm" => cmd_disasm(&opts).map_err(CliError::from),
        "serve" => cmd_serve(&opts).map_err(CliError::from),
        "connect" => cmd_connect(&opts).map_err(CliError::from),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

const USAGE: &str = "\
pathmark — dynamic path-based software watermarking (PLDI 2004)

commands:
  demo      --out FILE                      write a sample program
  embed     --program FILE --out FILE --seed N --input A,B,… --bits N
            [--pieces N] [--watermark HEX]  embed a fingerprint
  recognize --program FILE --seed N --input A,B,… --bits N [--pieces N]
            (both take --tier reference|predecoded|compiled to pick the
            tracer engine; default compiled)
  run       --program FILE [--input A,B,…]  execute, print output
  attack    --program FILE --out FILE --kind KIND [--count N] [--seed N]
            KIND: branches | nops | invert | reorder | split | diversify
  disasm    --program FILE                  print a listing
  fleet embed     --program FILE --manifest FILE --out-dir DIR --seed N
                  --input A,B,… --bits N [--pieces N] [--workers K]
                  fingerprint one copy per manifest line (JSONL); writes
                  DIR/<job_id>.pmvm per copy plus DIR/report.jsonl
  fleet recognize --dir DIR --manifest FILE --seed N --input A,B,…
                  --bits N [--pieces N] [--workers K] [--report FILE]
                  recognize every copy against its manifest entry; the
                  embed report doubles as the manifest
  serve     --journal PREFIX [--socket PATH | --tcp ADDR] [--workers K]
            [--max-inflight N] [--max-connections N] [--retries N]
            [--journal-max-bytes N] [--resume]
            run the resident daemon: long-lived embed/recognize sessions
            behind a JSONL request protocol (stdin/stdout without
            --socket/--tcp; a unix-domain socket or — in builds with the
            `tcp` feature — a TCP listener with them). Socket transports
            serve up to --max-connections clients concurrently (default
            32); startup refuses a socket path a live daemon still
            answers on and only removes stale files. --max-inflight caps
            accepted-but-unsettled jobs (excess is shed, default 64),
            split fairly across active tenants; --journal-max-bytes
            rotates the journal's live intents file past N bytes;
            --resume replays a crashed daemon's journal before serving
  connect   --socket PATH | --tcp ADDR
            pipe stdin to a running daemon and its responses to stdout
            (the scripting client for `serve --socket`/`serve --tcp`)

fault tolerance (fleet embed, fleet recognize):
  --retries N                    re-run a job up to N extra times after
                                 a transient failure (default 0)
  --job-timeout MS               abandon a job overrunning MS ms; it is
                                 reported `timed-out`, its worker
                                 replaced, and the batch continues
  --resume                       skip jobs whose outcome lines survive
                                 from an interrupted run (fleet
                                 recognize: needs --report FILE)

execution tier (embed, recognize, fleet embed, fleet recognize):
  --tier NAME                    tracer engine: reference (oracle),
                                 predecoded, or compiled (default; falls
                                 back to predecoded past the compile
                                 budget or for full-trace recording)

scan mode (recognize, fleet recognize):
  --scan-mode NAME               fused (default) recognizes a copy in
                                 one pass, scanning trace bits as the
                                 tracer streams them; two-phase
                                 materializes the full bit-string first
                                 and scans it separately (the reference
                                 the fused path is property-tested
                                 against)

telemetry (embed, recognize, fleet embed, fleet recognize, serve):
  --metrics FILE                 capture stage-level spans and counters
  --metrics-format jsonl|summary one JSON line per event (default), or
                                 one aggregated JSON summary object

exit codes:
  0  success
  1  usage or processing error
  2  recognition did not recover the (expected) watermark";

/// Options that are flags: present or absent, never followed by a
/// value.
const BOOLEAN_FLAGS: &[&str] = &["resume"];

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected an option, found `{key}`"));
        };
        if BOOLEAN_FLAGS.contains(&name) {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("option --{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn required<'o>(opts: &'o HashMap<String, String>, name: &str) -> Result<&'o str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}"))
}

/// Parses `--tier` (default: the stackvm default, the compiled tier).
fn parse_tier(opts: &HashMap<String, String>) -> Result<ExecTier, String> {
    match opts.get("tier") {
        None => Ok(ExecTier::default()),
        Some(name) => ExecTier::parse(name).ok_or_else(|| {
            format!("--tier: unknown tier `{name}` (expected reference, predecoded, or compiled)")
        }),
    }
}

/// Parses `--scan-mode` (default: the fused streaming scan).
fn parse_scan_mode(opts: &HashMap<String, String>) -> Result<ScanMode, String> {
    match opts.get("scan-mode") {
        None => Ok(ScanMode::default()),
        Some(name) => ScanMode::parse(name).ok_or_else(|| {
            format!("--scan-mode: unknown mode `{name}` (expected fused or two-phase)")
        }),
    }
}

fn parse_u64(opts: &HashMap<String, String>, name: &str) -> Result<u64, String> {
    required(opts, name)?
        .parse()
        .map_err(|e| format!("--{name}: {e}"))
}

fn parse_usize_or(opts: &HashMap<String, String>, name: &str, default: usize) -> Result<usize, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
    }
}

fn parse_input(opts: &HashMap<String, String>) -> Result<Vec<i64>, String> {
    match opts.get("input") {
        None => Ok(Vec::new()),
        Some(s) if s.is_empty() => Ok(Vec::new()),
        Some(s) => s
            .split(',')
            .map(|v| v.trim().parse().map_err(|e| format!("--input: {e}")))
            .collect(),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let program =
        pathmark::vm::codec::decode_program(&bytes).map_err(|e| format!("{path}: {e}"))?;
    pathmark::vm::verify::verify(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn save_program(path: &str, program: &Program) -> Result<(), String> {
    std::fs::write(path, pathmark::vm::codec::encode_program(program))
        .map_err(|e| format!("{path}: {e}"))
}

fn parse_hex(s: &str) -> Result<BigUint, String> {
    let mut value = BigUint::zero();
    for c in s.chars() {
        let digit = c.to_digit(16).ok_or_else(|| format!("bad hex digit `{c}`"))?;
        value = &(&value << 4) + &BigUint::from(digit as u64);
    }
    Ok(value)
}

fn key_and_config(opts: &HashMap<String, String>) -> Result<(WatermarkKey, JavaConfig), String> {
    let seed = parse_u64(opts, "seed")?;
    let input = parse_input(opts)?;
    let bits: usize = required(opts, "bits")?
        .parse()
        .map_err(|e| format!("--bits: {e}"))?;
    let config = JavaConfig::for_watermark_bits(bits);
    let pieces = parse_usize_or(opts, "pieces", config.num_pieces)?;
    Ok((WatermarkKey::new(seed, input), config.with_pieces(pieces)))
}

/// How `--metrics` output is materialized at the end of a run.
enum MetricsWriter {
    /// Events stream to the file as they happen; `finish` only flushes.
    Jsonl,
    /// Events aggregate in memory; `finish` renders one JSON summary.
    Summary { sink: Arc<MemorySink>, path: String },
}

/// The `--metrics FILE [--metrics-format jsonl|summary]` plumbing: a
/// telemetry handle to thread through sessions/pools/caches, plus the
/// writer that materializes the file when the command finishes.
struct Metrics {
    telemetry: Telemetry,
    writer: Option<MetricsWriter>,
}

impl Metrics {
    fn from_options(opts: &HashMap<String, String>) -> Result<Metrics, String> {
        let Some(path) = opts.get("metrics") else {
            if opts.contains_key("metrics-format") {
                return Err("--metrics-format requires --metrics FILE".into());
            }
            return Ok(Metrics {
                telemetry: Telemetry::null(),
                writer: None,
            });
        };
        match opts.get("metrics-format").map(String::as_str).unwrap_or("jsonl") {
            "jsonl" => {
                let sink = JsonlSink::create(path).map_err(|e| format!("{path}: {e}"))?;
                Ok(Metrics {
                    telemetry: Telemetry::new(Arc::new(sink)),
                    writer: Some(MetricsWriter::Jsonl),
                })
            }
            "summary" => {
                let sink = Arc::new(MemorySink::new());
                Ok(Metrics {
                    telemetry: Telemetry::new(sink.clone()),
                    writer: Some(MetricsWriter::Summary {
                        sink,
                        path: path.clone(),
                    }),
                })
            }
            other => Err(format!(
                "--metrics-format: unknown format `{other}` (expected jsonl or summary)"
            )),
        }
    }

    /// Writes/flushes the metrics file. Call after all work (and any
    /// worker pool holding a telemetry clone) is done.
    fn finish(self) -> Result<(), String> {
        self.telemetry.flush();
        if let Some(MetricsWriter::Summary { sink, path }) = self.writer {
            let mut json = sink.render_json();
            json.push('\n');
            std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        }
        Ok(())
    }
}

fn cmd_demo(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = required(opts, "out")?;
    let program = pathmark::workloads::java::caffeinemark();
    save_program(out, &program)?;
    println!(
        "wrote {out}: {} functions, {} bytes of bytecode",
        program.functions.len(),
        program.byte_size()
    );
    println!("try: pathmark embed --program {out} --out marked.pmvm --seed 7 --input 12 --bits 128");
    Ok(())
}

fn cmd_embed(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    let out = required(opts, "out")?;
    let (key, config) = key_and_config(opts)?;
    let metrics = Metrics::from_options(opts)?;
    let session = Embedder::builder(key, config)
        .telemetry(metrics.telemetry.clone())
        .exec_tier(parse_tier(opts)?)
        .build()
        .map_err(|e| e.to_string())?;
    let watermark = match opts.get("watermark") {
        Some(hex) => Watermark::from_value(parse_hex(hex)?, session.config().watermark_bits),
        None => Watermark::random_for(session.config(), session.key()),
    };
    let marked = session.embed(&program, &watermark).map_err(|e| e.to_string())?;
    save_program(out, &marked.program)?;
    println!("embedded W = {:x} ({} bits)", watermark.value(), watermark.bits());
    println!(
        "{} pieces, {} -> {} bytes (+{:.1}%)",
        marked.report.pieces.len(),
        marked.report.bytes_before,
        marked.report.bytes_after,
        100.0 * (marked.report.bytes_after as f64 / marked.report.bytes_before as f64 - 1.0),
    );
    metrics.finish()
}

fn cmd_recognize(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let program = load_program(required(opts, "program")?)?;
    let (key, config) = key_and_config(opts)?;
    let metrics = Metrics::from_options(opts)?;
    let session = Recognizer::builder(key, config)
        .telemetry(metrics.telemetry.clone())
        .exec_tier(parse_tier(opts)?)
        .scan_mode(parse_scan_mode(opts)?)
        .build()
        .map_err(|e| e.to_string())?;
    let rec = session.recognize(&program).map_err(|e| e.to_string())?;
    eprintln!(
        "candidates: {}, after vote: {}, survivors: {}, primes covered: {}/{}",
        rec.candidates, rec.after_vote, rec.survivors, rec.primes_covered, rec.primes_total
    );
    // One machine-readable line on stdout either way; the exit code
    // (0 vs 2) carries the verdict for scripts.
    let recovered = match &rec.watermark {
        Some(w) => {
            println!("RESULT found watermark_hex={w:x}");
            1
        }
        None => {
            println!(
                "RESULT not-found primes_covered={}/{}",
                rec.primes_covered, rec.primes_total
            );
            0
        }
    };
    metrics.finish()?;
    match ExitStatus::for_recognition(recovered, 1) {
        ExitStatus::Success => Ok(()),
        _ => Err(CliError::NotFound),
    }
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    let input = parse_input(opts)?;
    let outcome = Vm::new(&program)
        .with_input(input)
        .run()
        .map_err(|e| e.to_string())?;
    for v in &outcome.output {
        println!("{v}");
    }
    eprintln!("({} instructions)", outcome.instructions);
    Ok(())
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut program = load_program(required(opts, "program")?)?;
    let out = required(opts, "out")?;
    let kind = required(opts, "kind")?;
    let count = parse_usize_or(opts, "count", 100)?;
    let seed = opts
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    match kind {
        "branches" => attacks::insert_random_branches(&mut program, count, seed),
        "nops" => attacks::insert_nops(&mut program, count, seed),
        "invert" => attacks::invert_branch_senses(&mut program, 1.0, seed),
        "reorder" => attacks::reorder_blocks(&mut program, seed),
        "split" => attacks::split_blocks(&mut program, count, seed),
        "diversify" => attacks::diversify(&mut program, seed),
        other => return Err(format!("unknown attack kind `{other}`")),
    }
    pathmark::vm::verify::verify(&program).map_err(|e| e.to_string())?;
    save_program(out, &program)?;
    println!("applied `{kind}`; wrote {out}");
    Ok(())
}

fn cmd_disasm(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    print!("{}", pathmark::vm::pretty::disassemble(&program));
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let journal = required(opts, "journal")?;
    let metrics = Metrics::from_options(opts)?;
    let retries: u32 = match opts.get("retries") {
        None => 0,
        Some(v) => v.parse().map_err(|e| format!("--retries: {e}"))?,
    };
    let mut options = pathmark::serve::ServeOptions::new(journal);
    options.workers = parse_workers(opts)?;
    options.max_inflight = parse_usize_or(opts, "max-inflight", options.max_inflight)?;
    options.max_connections = parse_usize_or(opts, "max-connections", options.max_connections)?;
    options.journal_max_bytes = match opts.get("journal-max-bytes") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("--journal-max-bytes: {e}"))?),
    };
    options.resume = opts.contains_key("resume");
    options.retry = if retries == 0 {
        RetryPolicy::none()
    } else {
        RetryPolicy::with_retries(retries)
    };
    options.telemetry = metrics.telemetry.clone();
    let server = pathmark::serve::Server::new(options)?;
    match (opts.get("socket"), opts.get("tcp")) {
        (Some(_), Some(_)) => return Err("--socket and --tcp are mutually exclusive".into()),
        (Some(path), None) => server
            .serve_unix(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?,
        (None, Some(addr)) => serve_tcp(&server, addr)?,
        (None, None) => server.serve_stdio().map_err(|e| format!("stdin: {e}"))?,
    }
    // The server (and its pool) must be gone before the metrics file is
    // finalized, so every queued span has reached the sink.
    drop(server);
    metrics.finish()
}

#[cfg(feature = "tcp")]
fn serve_tcp(server: &pathmark::serve::Server, addr: &str) -> Result<(), String> {
    server.serve_tcp(addr).map_err(|e| format!("{addr}: {e}"))
}

#[cfg(not(feature = "tcp"))]
fn serve_tcp(_server: &pathmark::serve::Server, addr: &str) -> Result<(), String> {
    Err(format!(
        "--tcp {addr}: this build lacks the `tcp` feature (rebuild with `--features tcp`)"
    ))
}

/// The shared half of `pathmark connect`: forward stdin to the daemon,
/// stream its responses to stdout, and half-close the request side so
/// the daemon sees EOF while responses keep flowing until drained.
fn relay_stdio<S>(
    requests: S,
    mut responses: S,
    half_close: fn(&S) -> std::io::Result<()>,
    label: &str,
) -> Result<(), String>
where
    S: std::io::Read + std::io::Write + Send + 'static,
{
    // Responses stream to stdout as they arrive; a second thread keeps
    // them flowing while this one forwards stdin.
    let reader = std::thread::spawn(move || {
        let _ = std::io::copy(&mut responses, &mut std::io::stdout());
    });
    let mut requests = requests;
    std::io::copy(&mut std::io::stdin().lock(), &mut requests)
        .map_err(|e| format!("{label}: {e}"))?;
    half_close(&requests).map_err(|e| format!("{label}: {e}"))?;
    reader.join().map_err(|_| "response reader panicked".to_string())?;
    Ok(())
}

fn cmd_connect(opts: &HashMap<String, String>) -> Result<(), String> {
    if let Some(addr) = opts.get("tcp") {
        if opts.contains_key("socket") {
            return Err("--socket and --tcp are mutually exclusive".into());
        }
        return connect_tcp(addr);
    }
    let path = required(opts, "socket")?;
    let stream =
        std::os::unix::net::UnixStream::connect(path).map_err(|e| format!("{path}: {e}"))?;
    let responses = stream.try_clone().map_err(|e| format!("{path}: {e}"))?;
    relay_stdio(
        stream,
        responses,
        |s| s.shutdown(std::net::Shutdown::Write),
        path,
    )
}

#[cfg(feature = "tcp")]
fn connect_tcp(addr: &str) -> Result<(), String> {
    let stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    let responses = stream.try_clone().map_err(|e| format!("{addr}: {e}"))?;
    relay_stdio(
        stream,
        responses,
        |s| s.shutdown(std::net::Shutdown::Write),
        addr,
    )
}

#[cfg(not(feature = "tcp"))]
fn connect_tcp(addr: &str) -> Result<(), String> {
    Err(format!(
        "--tcp {addr}: this build lacks the `tcp` feature (rebuild with `--features tcp`)"
    ))
}

fn cmd_fleet(args: &[String]) -> Result<(), CliError> {
    let Some(sub) = args.first() else {
        return Err(CliError::Usage(
            "fleet needs a subcommand: embed | recognize".into(),
        ));
    };
    let opts = parse_options(&args[1..])?;
    match sub.as_str() {
        "embed" => cmd_fleet_embed(&opts),
        "recognize" => cmd_fleet_recognize(&opts),
        other => Err(CliError::Usage(format!("unknown fleet subcommand `{other}`"))),
    }
}

fn parse_workers(opts: &HashMap<String, String>) -> Result<usize, String> {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    parse_usize_or(opts, "workers", default)
}

/// The `--retries N` / `--job-timeout MS` fault-tolerance knobs shared
/// by both fleet subcommands. Fault injection is never exposed here.
fn batch_options(opts: &HashMap<String, String>) -> Result<BatchOptions, String> {
    let retries: u32 = match opts.get("retries") {
        None => 0,
        Some(v) => v.parse().map_err(|e| format!("--retries: {e}"))?,
    };
    let deadline = match opts.get("job-timeout") {
        None => None,
        Some(v) => Some(Duration::from_millis(
            v.parse().map_err(|e| format!("--job-timeout: {e}"))?,
        )),
    };
    Ok(BatchOptions {
        retry: if retries == 0 {
            RetryPolicy::none()
        } else {
            RetryPolicy::with_retries(retries)
        },
        deadline,
        ..BatchOptions::default()
    })
}

/// Resume bookkeeping needs job ids to be unique: an outcome line is
/// matched back to its manifest line by id alone.
fn ensure_unique_job_ids(specs: &[EmbedJobSpec]) -> Result<(), String> {
    let mut seen = HashSet::new();
    for spec in specs {
        if !seen.insert(spec.job_id.as_str()) {
            return Err(format!("duplicate job_id `{}` in manifest", spec.job_id));
        }
    }
    Ok(())
}

/// Reassembles the full report in manifest order from resumed lines
/// plus freshly settled ones.
fn ordered_reports(
    specs: &[EmbedJobSpec],
    recorded: Vec<JobReport>,
    fresh: impl IntoIterator<Item = JobReport>,
) -> Result<Vec<JobReport>, String> {
    let mut by_id: HashMap<String, JobReport> = HashMap::new();
    for report in recorded.into_iter().chain(fresh) {
        by_id.insert(report.job_id.clone(), report);
    }
    specs
        .iter()
        .map(|spec| {
            by_id
                .remove(&spec.job_id)
                .ok_or_else(|| format!("no outcome recorded for job `{}`", spec.job_id))
        })
        .collect()
}

fn cmd_fleet_embed(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let program = load_program(required(opts, "program")?)?;
    let manifest_path = required(opts, "manifest")?;
    let out_dir = required(opts, "out-dir")?;
    let workers = parse_workers(opts)?;
    let (key, config) = key_and_config(opts)?;
    let options = batch_options(opts)?;
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    let jobs = parse_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    if jobs.is_empty() {
        return Err(CliError::Usage(format!("{manifest_path}: no jobs")));
    }
    ensure_unique_job_ids(&jobs)?;
    std::fs::create_dir_all(out_dir).map_err(|e| format!("{out_dir}: {e}"))?;

    let report_path = format!("{out_dir}/report.jsonl");
    let (mut writer, recorded) = if opts.contains_key("resume") {
        ReportWriter::resume(&report_path).map_err(|e| format!("{report_path}: {e}"))?
    } else {
        let writer =
            ReportWriter::create(&report_path).map_err(|e| format!("{report_path}: {e}"))?;
        (writer, Vec::new())
    };
    let done: HashSet<&str> = recorded.iter().map(|r| r.job_id.as_str()).collect();
    let pending: Vec<EmbedJobSpec> = jobs
        .iter()
        .filter(|j| !done.contains(j.job_id.as_str()))
        .cloned()
        .collect();

    let metrics = Metrics::from_options(opts)?;
    let session = Embedder::builder(key, config)
        .telemetry(metrics.telemetry.clone())
        .exec_tier(parse_tier(opts)?)
        .build()
        .map_err(|e| e.to_string())?;
    let pool = WorkerPool::with_telemetry(workers, metrics.telemetry.clone());
    let cache = TraceCache::with_telemetry(metrics.telemetry.clone());
    let started = std::time::Instant::now();

    // Each outcome streams to disk the moment it settles: the marked
    // copy first, then its report line — so an outcome line on disk
    // guarantees its `.pmvm` is on disk too, which is what lets
    // `--resume` skip the job wholesale.
    let mut stream_error: Option<String> = None;
    let outcomes = if pending.is_empty() {
        Vec::new()
    } else {
        embed_batch_with(
            &program,
            &session,
            &pending,
            &pool,
            &cache,
            &options,
            |outcome| {
                if stream_error.is_some() {
                    return;
                }
                if let Some(marked) = &outcome.marked {
                    let path = format!("{out_dir}/{}.pmvm", outcome.report.job_id);
                    if let Err(e) = save_program(&path, marked) {
                        stream_error = Some(e);
                        return;
                    }
                }
                if let Err(e) = writer.append(&outcome.report) {
                    stream_error = Some(format!("{report_path}: {e}"));
                }
            },
        )
        .map_err(|e| e.to_string())?
    };
    if let Some(error) = stream_error {
        return Err(error.into());
    }

    let resumed = recorded.len();
    let ordered = ordered_reports(&jobs, recorded, outcomes.into_iter().map(|o| o.report))?;
    let failed = ordered.iter().filter(|r| !r.status.is_ok()).count();
    writer
        .finalize(&ordered)
        .map_err(|e| format!("{report_path}: {e}"))?;
    eprintln!(
        "embedded {}/{} copies ({resumed} resumed) in {} ms with {workers} workers; \
         report: {report_path}",
        ordered.len() - failed,
        ordered.len(),
        started.elapsed().as_millis(),
    );
    // Joining the pool first guarantees every queued span has reached
    // the sink before the metrics file is finalized.
    drop(pool);
    metrics.finish()?;
    if failed > 0 {
        return Err(CliError::Usage(format!(
            "{failed} of {} embed jobs failed (see {report_path})",
            ordered.len()
        )));
    }
    Ok(())
}

fn cmd_fleet_recognize(opts: &HashMap<String, String>) -> Result<(), CliError> {
    let dir = required(opts, "dir")?;
    let manifest_path = required(opts, "manifest")?;
    let workers = parse_workers(opts)?;
    let (key, config) = key_and_config(opts)?;
    let options = batch_options(opts)?;
    let metrics = Metrics::from_options(opts)?;
    let session = Recognizer::builder(key, config)
        .telemetry(metrics.telemetry.clone())
        .exec_tier(parse_tier(opts)?)
        .scan_mode(parse_scan_mode(opts)?)
        .build()
        .map_err(|e| e.to_string())?;
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("{manifest_path}: {e}"))?;
    let specs = parse_manifest(&text).map_err(|e| format!("{manifest_path}: {e}"))?;
    if specs.is_empty() {
        return Err(CliError::Usage(format!("{manifest_path}: no jobs")));
    }
    ensure_unique_job_ids(&specs)?;

    // Recognition prints its report to stdout; `--report FILE`
    // additionally persists it crash-safely, and is what `--resume`
    // resumes from.
    let resume = opts.contains_key("resume");
    if resume && !opts.contains_key("report") {
        return Err(CliError::Usage(
            "--resume requires --report FILE (the file to resume from)".into(),
        ));
    }
    let (mut writer, recorded) = match opts.get("report") {
        None => (None, Vec::new()),
        Some(path) => {
            let (writer, recorded) = if resume {
                ReportWriter::resume(path).map_err(|e| format!("{path}: {e}"))?
            } else {
                let writer = ReportWriter::create(path).map_err(|e| format!("{path}: {e}"))?;
                (writer, Vec::new())
            };
            (Some(writer), recorded)
        }
    };
    let done: HashSet<&str> = recorded.iter().map(|r| r.job_id.as_str()).collect();

    let mut jobs = Vec::new();
    for spec in &specs {
        if done.contains(spec.job_id.as_str()) {
            continue;
        }
        let program = load_program(&format!("{dir}/{}.pmvm", spec.job_id))?;
        // The expected watermark is resolved exactly as `fleet embed`
        // resolved it, so a plain manifest works as well as a report.
        let expected = match &spec.watermark_hex {
            Some(hex) => hex.clone(),
            None => to_hex(spec.watermark(session.key(), session.config())?.value()),
        };
        jobs.push(RecognizeJob {
            job_id: spec.job_id.clone(),
            program,
            expected_hex: Some(expected),
            seed: spec.effective_seed(session.key().seed),
        });
    }

    let pool = WorkerPool::with_telemetry(workers, metrics.telemetry.clone());
    let started = std::time::Instant::now();
    let mut stream_error: Option<String> = None;
    let outcomes = if jobs.is_empty() {
        Vec::new()
    } else {
        recognize_batch_with(&jobs, &session, &pool, &options, |outcome| {
            if let Some(writer) = &mut writer {
                if stream_error.is_none() {
                    if let Err(e) = writer.append(&outcome.report) {
                        stream_error = Some(format!("report: {e}"));
                    }
                }
            }
        })
    };
    if let Some(error) = stream_error {
        return Err(error.into());
    }

    let resumed = recorded.len();
    let ordered = ordered_reports(&specs, recorded, outcomes.into_iter().map(|o| o.report))?;
    let mut recovered = 0usize;
    for report in &ordered {
        println!("{}", report.to_line());
        if report.status.is_ok() {
            recovered += 1;
        }
    }
    if let Some(writer) = writer {
        writer
            .finalize(&ordered)
            .map_err(|e| format!("report: {e}"))?;
    }
    eprintln!(
        "recognized {recovered}/{} copies ({resumed} resumed) in {} ms with {workers} workers",
        ordered.len(),
        started.elapsed().as_millis(),
    );
    drop(pool);
    metrics.finish()?;
    match ExitStatus::for_recognition(recovered, ordered.len()) {
        ExitStatus::Success => Ok(()),
        _ => Err(CliError::NotFound),
    }
}
