//! `pathmark` — command-line driver for path-based watermarking.
//!
//! Programs are stored in the `stackvm` binary codec (`.pmvm`). The
//! secret key is a `--seed` integer plus a comma-separated `--input`
//! sequence; keep both secret.
//!
//! ```text
//! pathmark demo --out demo.pmvm          write a sample program
//! pathmark embed --program P --out Q --seed S --input I --bits B [--pieces N] [--watermark HEX]
//! pathmark recognize --program Q --seed S --input I --bits B
//! pathmark run --program P [--input I]   execute and print output
//! pathmark attack --program Q --out R --kind K [--count N] [--seed S]
//! pathmark disasm --program P            disassembly listing
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use pathmark::attacks::java as attacks;
use pathmark::core::java::{embed, recognize, JavaConfig};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::math::bigint::BigUint;
use pathmark::vm::interp::Vm;
use pathmark::vm::Program;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `pathmark help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".into());
    };
    let opts = parse_options(&args[1..])?;
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", USAGE);
            Ok(())
        }
        "demo" => cmd_demo(&opts),
        "embed" => cmd_embed(&opts),
        "recognize" => cmd_recognize(&opts),
        "run" => cmd_run(&opts),
        "attack" => cmd_attack(&opts),
        "disasm" => cmd_disasm(&opts),
        other => Err(format!("unknown command `{other}`")),
    }
}

const USAGE: &str = "\
pathmark — dynamic path-based software watermarking (PLDI 2004)

commands:
  demo      --out FILE                      write a sample program
  embed     --program FILE --out FILE --seed N --input A,B,… --bits N
            [--pieces N] [--watermark HEX]  embed a fingerprint
  recognize --program FILE --seed N --input A,B,… --bits N [--pieces N]
  run       --program FILE [--input A,B,…]  execute, print output
  attack    --program FILE --out FILE --kind KIND [--count N] [--seed N]
            KIND: branches | nops | invert | reorder | split | diversify
  disasm    --program FILE                  print a listing";

fn parse_options(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut opts = HashMap::new();
    let mut it = args.iter();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected an option, found `{key}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("option --{name} needs a value"))?;
        opts.insert(name.to_string(), value.clone());
    }
    Ok(opts)
}

fn required<'o>(opts: &'o HashMap<String, String>, name: &str) -> Result<&'o str, String> {
    opts.get(name)
        .map(String::as_str)
        .ok_or_else(|| format!("missing --{name}"))
}

fn parse_u64(opts: &HashMap<String, String>, name: &str) -> Result<u64, String> {
    required(opts, name)?
        .parse()
        .map_err(|e| format!("--{name}: {e}"))
}

fn parse_usize_or(opts: &HashMap<String, String>, name: &str, default: usize) -> Result<usize, String> {
    match opts.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("--{name}: {e}")),
    }
}

fn parse_input(opts: &HashMap<String, String>) -> Result<Vec<i64>, String> {
    match opts.get("input") {
        None => Ok(Vec::new()),
        Some(s) if s.is_empty() => Ok(Vec::new()),
        Some(s) => s
            .split(',')
            .map(|v| v.trim().parse().map_err(|e| format!("--input: {e}")))
            .collect(),
    }
}

fn load_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    let program =
        pathmark::vm::codec::decode_program(&bytes).map_err(|e| format!("{path}: {e}"))?;
    pathmark::vm::verify::verify(&program).map_err(|e| format!("{path}: {e}"))?;
    Ok(program)
}

fn save_program(path: &str, program: &Program) -> Result<(), String> {
    std::fs::write(path, pathmark::vm::codec::encode_program(program))
        .map_err(|e| format!("{path}: {e}"))
}

fn parse_hex(s: &str) -> Result<BigUint, String> {
    let mut value = BigUint::zero();
    for c in s.chars() {
        let digit = c.to_digit(16).ok_or_else(|| format!("bad hex digit `{c}`"))?;
        value = &(&value << 4) + &BigUint::from(digit as u64);
    }
    Ok(value)
}

fn key_and_config(opts: &HashMap<String, String>) -> Result<(WatermarkKey, JavaConfig), String> {
    let seed = parse_u64(opts, "seed")?;
    let input = parse_input(opts)?;
    let bits: usize = required(opts, "bits")?
        .parse()
        .map_err(|e| format!("--bits: {e}"))?;
    let config = JavaConfig::for_watermark_bits(bits);
    let pieces = parse_usize_or(opts, "pieces", config.num_pieces)?;
    Ok((WatermarkKey::new(seed, input), config.with_pieces(pieces)))
}

fn cmd_demo(opts: &HashMap<String, String>) -> Result<(), String> {
    let out = required(opts, "out")?;
    let program = pathmark::workloads::java::caffeinemark();
    save_program(out, &program)?;
    println!(
        "wrote {out}: {} functions, {} bytes of bytecode",
        program.functions.len(),
        program.byte_size()
    );
    println!("try: pathmark embed --program {out} --out marked.pmvm --seed 7 --input 12 --bits 128");
    Ok(())
}

fn cmd_embed(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    let out = required(opts, "out")?;
    let (key, config) = key_and_config(opts)?;
    let watermark = match opts.get("watermark") {
        Some(hex) => Watermark::from_value(parse_hex(hex)?, config.watermark_bits),
        None => Watermark::random_for(&config, &key),
    };
    let marked = embed(&program, &watermark, &key, &config).map_err(|e| e.to_string())?;
    save_program(out, &marked.program)?;
    println!("embedded W = {:x} ({} bits)", watermark.value(), watermark.bits());
    println!(
        "{} pieces, {} -> {} bytes (+{:.1}%)",
        marked.report.pieces.len(),
        marked.report.bytes_before,
        marked.report.bytes_after,
        100.0 * (marked.report.bytes_after as f64 / marked.report.bytes_before as f64 - 1.0),
    );
    Ok(())
}

fn cmd_recognize(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    let (key, config) = key_and_config(opts)?;
    let rec = recognize(&program, &key, &config).map_err(|e| e.to_string())?;
    println!(
        "candidates: {}, after vote: {}, survivors: {}, primes covered: {}/{}",
        rec.candidates, rec.after_vote, rec.survivors, rec.primes_covered, rec.primes_total
    );
    match rec.watermark {
        Some(w) => {
            println!("recovered W = {w:x}");
            Ok(())
        }
        None => Err("no watermark recovered".into()),
    }
}

fn cmd_run(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    let input = parse_input(opts)?;
    let outcome = Vm::new(&program)
        .with_input(input)
        .run()
        .map_err(|e| e.to_string())?;
    for v in &outcome.output {
        println!("{v}");
    }
    eprintln!("({} instructions)", outcome.instructions);
    Ok(())
}

fn cmd_attack(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut program = load_program(required(opts, "program")?)?;
    let out = required(opts, "out")?;
    let kind = required(opts, "kind")?;
    let count = parse_usize_or(opts, "count", 100)?;
    let seed = opts
        .get("seed")
        .map(|s| s.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(1);
    match kind {
        "branches" => attacks::insert_random_branches(&mut program, count, seed),
        "nops" => attacks::insert_nops(&mut program, count, seed),
        "invert" => attacks::invert_branch_senses(&mut program, 1.0, seed),
        "reorder" => attacks::reorder_blocks(&mut program, seed),
        "split" => attacks::split_blocks(&mut program, count, seed),
        "diversify" => attacks::diversify(&mut program, seed),
        other => return Err(format!("unknown attack kind `{other}`")),
    }
    pathmark::vm::verify::verify(&program).map_err(|e| e.to_string())?;
    save_program(out, &program)?;
    println!("applied `{kind}`; wrote {out}");
    Ok(())
}

fn cmd_disasm(opts: &HashMap<String, String>) -> Result<(), String> {
    let program = load_program(required(opts, "program")?)?;
    print!("{}", pathmark::vm::pretty::disassemble(&program));
    Ok(())
}
