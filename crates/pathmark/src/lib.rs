//! Dynamic path-based software watermarking — the umbrella crate.
//!
//! A from-scratch, full-system reproduction of C. Collberg, E. Carter,
//! S. Debray, A. Huntwork, J. Kececioglu, C. Linn and M. Stepp,
//! *Dynamic Path-Based Software Watermarking*, PLDI 2004. The watermark
//! lives in the **runtime branch behavior** of a program on a secret
//! input. See the repository `README.md` and `DESIGN.md` for the
//! architecture, and `EXPERIMENTS.md` for the reproduction of every
//! figure in the paper's evaluation.
//!
//! This crate re-exports the whole system:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the watermarking algorithms (Sections 3 and 4) |
//! | [`math`] | bignums, (generalized) CRT, enumeration, recovery model |
//! | [`crypto`] | XTEA, keyed PRNG, displacement perfect hashing |
//! | [`vm`] | the Java-like bytecode VM substrate |
//! | [`sim`] | the IA-32-like native simulator substrate |
//! | [`attacks`] | the distortive / rewriting attack suite (Section 5) |
//! | [`workloads`] | CaffeineMark-, Jess- and SPECint-like programs |
//! | [`fleet`] | parallel batch fingerprinting & recognition engine |
//! | [`serve`] | resident recognition daemon: warm sessions, admission control, crash-safe resume |
//! | [`telemetry`] | stage-level tracing and metrics (spans, counters, sinks) |
//! | [`cli`] | shared command-line conventions (exit-code protocol) |
//!
//! # Example
//!
//! Embed a 128-bit fingerprint into the CaffeineMark-like workload and
//! recognize it:
//!
//! ```
//! use pathmark::core::java::{embed, recognize, JavaConfig};
//! use pathmark::core::key::{Watermark, WatermarkKey};
//!
//! let workload = pathmark::workloads::java::caffeinemark();
//! let key = WatermarkKey::new(0xDEC0DE, vec![6]);
//! let config = JavaConfig::for_watermark_bits(128).with_pieces(24);
//! let watermark = Watermark::random_for(&config, &key);
//!
//! let marked = embed(&workload, &watermark, &key, &config)?;
//! let found = recognize(&marked.program, &key, &config)?;
//! assert_eq!(found.watermark.as_ref(), Some(watermark.value()));
//! # Ok::<(), pathmark::core::WatermarkError>(())
//! ```

pub use pathmark_attacks as attacks;
pub use pathmark_core as core;
pub use pathmark_crypto as crypto;
pub use pathmark_fleet as fleet;
pub use pathmark_math as math;
pub use pathmark_serve as serve;
pub use pathmark_telemetry as telemetry;
pub use pathmark_workloads as workloads;

pub mod cli;

/// The bytecode virtual-machine substrate (re-export of `stackvm`).
pub use stackvm as vm;

/// The native-code simulator substrate (re-export of `nativesim`).
pub use nativesim as sim;
