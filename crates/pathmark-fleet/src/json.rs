//! A minimal JSONL codec for flat objects of string and unsigned-integer
//! fields — just enough for the batch manifest/report format, written in
//! the workspace's hand-rolled codec idiom (cf. `stackvm::codec`): no
//! external dependencies, and decode errors carry the byte offset.

use std::collections::HashMap;
use std::fmt;

/// A scalar field value: manifests and reports only ever hold strings
/// and unsigned integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scalar {
    /// A JSON string.
    Str(String),
    /// A non-negative JSON integer.
    Num(u64),
}

impl Scalar {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Scalar::Str(s) => Some(s),
            Scalar::Num(_) => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Scalar::Str(_) => None,
            Scalar::Num(n) => Some(*n),
        }
    }
}

/// A malformed JSON line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset within the line where decoding failed.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// Serializes one flat object as a single JSON line (no trailing
/// newline). Field order is preserved.
pub fn write_object(fields: &[(&str, Scalar)]) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_string(&mut out, name);
        out.push(':');
        match value {
            Scalar::Str(s) => write_string(&mut out, s),
            Scalar::Num(n) => out.push_str(&n.to_string()),
        }
    }
    out.push('}');
    out
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one flat JSON object (a manifest or report line).
///
/// # Errors
///
/// [`JsonError`] (with the byte offset) on malformed input, nesting,
/// duplicate fields, or non-scalar values.
pub fn parse_object(line: &str) -> Result<HashMap<String, Scalar>, JsonError> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    let fields = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after object"));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            reason,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn object(&mut self) -> Result<HashMap<String, Scalar>, JsonError> {
        self.skip_ws();
        self.expect(b'{', "expected `{`")?;
        let mut fields = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let name = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected `:` after field name")?;
            self.skip_ws();
            let value = self.scalar()?;
            if fields.insert(name, value).is_some() {
                return Err(self.err("duplicate field"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b'0'..=b'9') => Ok(Scalar::Num(self.number()?)),
            Some(b'{' | b'[') => Err(self.err("nested values are not supported")),
            _ => Err(self.err("expected a string or unsigned integer")),
        }
    }

    fn number(&mut self) -> Result<u64, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse().map_err(|_| JsonError {
            offset: start,
            reason: "integer out of range",
        })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one (possibly multi-byte) character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_strings_and_numbers() {
        let line = write_object(&[
            ("job_id", Scalar::Str("copy-001".into())),
            ("seed", Scalar::Num(u64::MAX)),
            ("status", Scalar::Str("failed: bad \"quote\"\n".into())),
        ]);
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields["job_id"].as_str(), Some("copy-001"));
        assert_eq!(fields["seed"].as_u64(), Some(u64::MAX));
        assert_eq!(fields["status"].as_str(), Some("failed: bad \"quote\"\n"));
    }

    #[test]
    fn parses_whitespace_and_empty_objects() {
        assert!(parse_object("{}").unwrap().is_empty());
        let fields = parse_object(" { \"a\" : 1 , \"b\" : \"x\" } ").unwrap();
        assert_eq!(fields.len(), 2);
        assert_eq!(fields["a"].as_u64(), Some(1));
    }

    #[test]
    fn rejects_malformed_lines_with_offsets() {
        for (line, offset) in [
            ("", 0usize),
            ("{\"a\":1", 6),
            ("{\"a\":1}x", 7),
            ("{\"a\":[1]}", 5),
            ("{\"a\":-1}", 5),
            ("{\"a\":1,\"a\":2}", 12),
            ("{\"a\":18446744073709551616}", 5),
        ] {
            let err = parse_object(line).unwrap_err();
            assert_eq!(err.offset, offset, "line {line:?}: {err}");
        }
    }

    #[test]
    fn escapes_control_characters() {
        let line = write_object(&[("x", Scalar::Str("\u{1}".into()))]);
        assert_eq!(line, "{\"x\":\"\\u0001\"}");
        let fields = parse_object(&line).unwrap();
        assert_eq!(fields["x"].as_str(), Some("\u{1}"));
    }

    #[test]
    fn unicode_escapes_and_raw_unicode_parse() {
        let fields = parse_object("{\"x\":\"caf\\u00e9 — ok\"}").unwrap();
        assert_eq!(fields["x"].as_str(), Some("café — ok"));
    }
}
