//! Sharded recognition: scan the sliding 64-bit windows of the trace
//! bit-string in parallel.
//!
//! Window `i` depends only on bits `i..i+64`, and everything downstream
//! of the window scan (voting, the consistency graphs, Generalized CRT)
//! consumes an *unordered multiset* of candidate statements. So the scan
//! parallelizes embarrassingly: partition the window **start offsets**
//! into disjoint contiguous ranges and run
//! [`Recognizer::window_survivors`] on each range on the worker pool.
//! The shards return columnar [`Survivors`] tables — *before* any
//! cryptography — which [`Survivors::merge`] folds into the table a
//! single full-range scan would have produced (reported to telemetry as
//! [`Stage::Merge`] on a telemetry-carrying session) and hands to one
//! [`Recognizer::candidates_from_survivors`] pass. The merged table's
//! rows are distinct, so every value reaches the batched cipher (or the
//! session decode cache) exactly once, and the resulting candidate map
//! equals a serial scan of the full range — making [`recognize_sharded`]
//! bit-identical to [`Recognizer::recognize_bits`] by construction, a
//! property the integration tests assert on every pipeline fixture.

use pathmark_core::bitstring::BitString;
use pathmark_core::java::{Recognition, Recognizer};
use pathmark_core::{Survivors, WatermarkError};
use pathmark_telemetry::Stage;
use stackvm::Program;

use crate::pool::WorkerPool;

/// Recognition over an already-decoded bit-string, with the window scan
/// split into `shards` parallel chunks. Output is bit-identical to
/// [`Recognizer::recognize_bits`] for every shard count.
///
/// # Errors
///
/// [`WatermarkError::Math`] for prime-configuration errors.
///
/// # Panics
///
/// Propagates a panic from a shard worker (the scan is pure, so this
/// indicates a bug, not a data condition).
pub fn recognize_sharded(
    bits: &BitString,
    session: &Recognizer,
    shards: usize,
    pool: &WorkerPool,
) -> Result<Recognition, WatermarkError> {
    let num_windows = bits.len().saturating_sub(63);
    let shards = shards.clamp(1, num_windows.max(1));
    let chunk = num_windows.div_ceil(shards).max(1);
    let ranges: Vec<(usize, usize)> = (0..shards)
        .map(|s| (s * chunk, ((s + 1) * chunk).min(num_windows)))
        .filter(|&(start, end)| start < end)
        .collect();

    // `BitString` clones share their packed word storage (`Arc<[u64]>`
    // internally), so handing every shard its own handle is O(1) — no
    // O(trace) copy of the bit-string per recognition.
    let bits = bits.clone();
    let shard_session = session.clone();
    let scanned = pool.run_all(ranges, move |_, (start, end)| {
        shard_session.window_survivors(&bits, start, end)
    });

    let merged = session.telemetry().time(Stage::Merge, || {
        Survivors::merge(scanned.into_iter().map(|result| {
            result.unwrap_or_else(|p| panic!("recognition shard panicked: {}", p.message))
        }))
    });
    let candidates = session.candidates_from_survivors(&merged)?;
    session.recognize_from_candidates(candidates)
}

/// Traces a (possibly attacked) program on the secret input and runs
/// [`recognize_sharded`] on its bit-string — the parallel counterpart of
/// [`Recognizer::recognize`].
///
/// # Errors
///
/// * [`WatermarkError::TraceFailed`] if the program faults on the secret
///   input;
/// * [`WatermarkError::Math`] for prime-configuration errors.
pub fn recognize_program_sharded(
    program: &Program,
    session: &Recognizer,
    shards: usize,
    pool: &WorkerPool,
) -> Result<Recognition, WatermarkError> {
    // Streaming trace: branch events fold into packed bits inside the
    // interpreter, so no event vector or decode pass precedes the scan.
    let bits = session.trace_bits(program)?;
    recognize_sharded(&bits, session, shards, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_core::java::{Embedder, JavaConfig};
    use pathmark_core::key::{Watermark, WatermarkKey};
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn sharded_matches_serial_for_all_shard_counts() {
        let key = WatermarkKey::new(0x5EC2E7, vec![3, 1, 4]);
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key);
        let marked = Embedder::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .embed(&host_program(), &watermark)
            .unwrap();
        let session = Recognizer::builder(key, config).build().unwrap();
        let bits = session.trace_bits(&marked.program).unwrap();
        let serial = session.recognize_bits(&bits).unwrap();
        assert_eq!(serial.watermark.as_ref(), Some(watermark.value()));

        let pool = WorkerPool::new(4);
        for shards in [1usize, 2, 3, 7, 64, 10_000] {
            let sharded = recognize_sharded(&bits, &session, shards, &pool).unwrap();
            assert_eq!(sharded, serial, "{shards} shards");
        }
        let via_program =
            recognize_program_sharded(&marked.program, &session, 4, &pool).unwrap();
        assert_eq!(via_program, serial);
    }

    #[test]
    fn shard_tables_merge_to_the_full_range_table() {
        // Disjoint shard scans of one bit-string must merge into the
        // exact table a single full-range scan produces — values,
        // multiplicities, and first offsets alike.
        let key = WatermarkKey::new(0x5EC2E7, vec![3, 1, 4]);
        let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
        let watermark = Watermark::random_for(&config, &key);
        let marked = Embedder::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .embed(&host_program(), &watermark)
            .unwrap();
        let session = Recognizer::builder(key, config).build().unwrap();
        let bits = session.trace_bits(&marked.program).unwrap();
        let n = bits.len().saturating_sub(63);
        let whole = session.window_survivors(&bits, 0, n);
        for shards in [1usize, 2, 3, 7, 64] {
            let chunk = n.div_ceil(shards).max(1);
            let parts: Vec<Survivors> = (0..shards)
                .map(|s| session.window_survivors(&bits, s * chunk, ((s + 1) * chunk).min(n)))
                .collect();
            assert_eq!(Survivors::merge(parts), whole, "{shards} shards");
        }
        assert_eq!(Survivors::merge(Vec::new()), Survivors::new());
    }

    #[test]
    fn degenerate_bitstrings_are_handled() {
        let key = WatermarkKey::new(9, vec![1]);
        let config = JavaConfig::for_watermark_bits(64);
        let session = Recognizer::builder(key, config).build().unwrap();
        let pool = WorkerPool::new(2);
        for len in [0usize, 10, 63, 64, 65] {
            let bits = BitString::from_bits(vec![true; len]);
            let serial = session.recognize_bits(&bits).unwrap();
            let sharded = recognize_sharded(&bits, &session, 8, &pool).unwrap();
            assert_eq!(sharded, serial, "length {len}");
        }
    }
}
