//! The JSONL batch manifest and report format.
//!
//! A **manifest** drives a batch: one JSON object per line, each naming
//! one copy to fingerprint. Blank lines and `#` comments are skipped.
//!
//! ```text
//! # 64-copy distribution run
//! {"job_id":"copy-000"}
//! {"job_id":"copy-001","seed":1234}
//! {"job_id":"copy-002","watermark_hex":"8f3a9c"}
//! ```
//!
//! Fields other than `job_id` are optional:
//!
//! * `seed` — the per-copy numeric secret. Defaults to
//!   `base_seed XOR fnv1a(job_id)`, so every copy gets a distinct,
//!   reproducible key derived from the batch key.
//! * `watermark_hex` — the copy's watermark `W_i` in hex. Defaults to a
//!   watermark drawn deterministically from the per-copy seed.
//!
//! A **report** is the output side: one line per job with the resolved
//! `watermark_hex` and `seed`, a `status`, and the job's wall-clock
//! time. Report lines are a superset of manifest lines, so a report can
//! be fed back in as the manifest of a recognition run.

use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

use pathmark_core::java::JavaConfig;
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_crypto::Prng;
use pathmark_math::bigint::BigUint;

use crate::cache::fnv1a;
use crate::json::{parse_object, write_object, Scalar};

/// One manifest line: a copy to fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedJobSpec {
    /// Identifies the copy (and names its output file).
    pub job_id: String,
    /// Explicit watermark `W_i` in lowercase hex, if pinned.
    pub watermark_hex: Option<String>,
    /// Explicit per-copy numeric secret, if pinned.
    pub seed: Option<u64>,
}

impl EmbedJobSpec {
    /// A spec with derived seed and watermark.
    pub fn new(job_id: impl Into<String>) -> EmbedJobSpec {
        EmbedJobSpec {
            job_id: job_id.into(),
            watermark_hex: None,
            seed: None,
        }
    }

    /// The copy's numeric secret: the explicit `seed` field, or a
    /// distinct reproducible value derived from the batch seed and the
    /// job id.
    pub fn effective_seed(&self, base_seed: u64) -> u64 {
        self.seed
            .unwrap_or_else(|| base_seed ^ fnv1a(self.job_id.as_bytes()))
    }

    /// The copy's full key under the batch key: per-copy numeric secret,
    /// shared secret input (so all copies trace identically).
    pub fn effective_key(&self, base: &WatermarkKey) -> WatermarkKey {
        WatermarkKey::new(self.effective_seed(base.seed), base.input.clone())
    }

    /// Resolves the copy's watermark `W_i`: the explicit hex value, or a
    /// watermark drawn deterministically from the per-copy seed.
    ///
    /// # Errors
    ///
    /// A message if `watermark_hex` is present but not valid hex.
    pub fn watermark(
        &self,
        base: &WatermarkKey,
        config: &JavaConfig,
    ) -> Result<Watermark, String> {
        match &self.watermark_hex {
            Some(hex) => Ok(Watermark::from_value(
                parse_hex(hex)?,
                config.watermark_bits,
            )),
            None => {
                let mut rng = Prng::from_seed(self.effective_seed(base.seed) ^ 0x57_4d46);
                Ok(Watermark::random(config.watermark_bits, &mut rng))
            }
        }
    }
}

/// A job's terminal state in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Embedded, or recognized with the expected watermark.
    Ok,
    /// The job failed; the payload says why (including panics).
    Failed(String),
    /// Recognition could not pin down a watermark.
    NotFound,
    /// Recognition recovered a watermark, but not the expected one.
    Mismatch,
    /// The job overran its deadline and was abandoned; its worker was
    /// replaced so the rest of the batch kept running.
    TimedOut,
}

impl JobStatus {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    fn render(&self) -> String {
        match self {
            JobStatus::Ok => "ok".to_string(),
            JobStatus::Failed(why) => format!("failed: {why}"),
            JobStatus::NotFound => "not-found".to_string(),
            JobStatus::Mismatch => "mismatch".to_string(),
            JobStatus::TimedOut => "timed-out".to_string(),
        }
    }

    fn parse(text: &str) -> JobStatus {
        match text {
            "ok" => JobStatus::Ok,
            "not-found" => JobStatus::NotFound,
            "mismatch" => JobStatus::Mismatch,
            "timed-out" => JobStatus::TimedOut,
            other => JobStatus::Failed(
                other
                    .strip_prefix("failed: ")
                    .unwrap_or(other)
                    .to_string(),
            ),
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One report line: a job's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The copy's id, echoed from the manifest.
    pub job_id: String,
    /// The resolved watermark `W_i` in lowercase hex.
    pub watermark_hex: String,
    /// The resolved per-copy numeric secret.
    pub seed: u64,
    /// Terminal state.
    pub status: JobStatus,
    /// Attempts the job consumed (1 without retries; 0 means the job
    /// was abandoned — timed out — before completing any attempt).
    pub attempts: u32,
    /// Wall-clock duration of the job in milliseconds.
    pub wall_ms: u64,
}

impl JobReport {
    /// Serializes the report as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        write_object(&[
            ("job_id", Scalar::Str(self.job_id.clone())),
            ("watermark_hex", Scalar::Str(self.watermark_hex.clone())),
            ("seed", Scalar::Num(self.seed)),
            ("status", Scalar::Str(self.status.render())),
            ("attempts", Scalar::Num(self.attempts as u64)),
            ("wall_ms", Scalar::Num(self.wall_ms)),
        ])
    }
}

/// Parses a manifest: one JSON object per line, `#` comments and blank
/// lines skipped. Report lines parse too (their extra fields are
/// accepted), so a previous embed report can drive a recognition run.
///
/// # Errors
///
/// A `line N: …` message naming the first malformed line.
pub fn parse_manifest(text: &str) -> Result<Vec<EmbedJobSpec>, String> {
    let mut specs = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields =
            parse_object(line).map_err(|e| format!("line {}: {e}", number + 1))?;
        let field_str = |name: &str| -> Result<Option<String>, String> {
            match fields.get(name) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("line {}: `{name}` must be a string", number + 1)),
            }
        };
        let job_id = field_str("job_id")?
            .ok_or_else(|| format!("line {}: missing `job_id`", number + 1))?;
        let seed = match fields.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| format!("line {}: `seed` must be an integer", number + 1))?,
            ),
        };
        specs.push(EmbedJobSpec {
            job_id,
            watermark_hex: field_str("watermark_hex")?,
            seed,
        });
    }
    Ok(specs)
}

/// Parses a report produced by [`JobReport::to_line`] lines.
///
/// # Errors
///
/// A `line N: …` message naming the first malformed line.
pub fn parse_report(text: &str) -> Result<Vec<JobReport>, String> {
    let mut reports = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields =
            parse_object(line).map_err(|e| format!("line {}: {e}", number + 1))?;
        let str_field = |name: &str| -> Result<String, String> {
            fields
                .get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string `{name}`", number + 1))
        };
        let num_field = |name: &str| -> Result<u64, String> {
            fields
                .get(name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("line {}: missing integer `{name}`", number + 1))
        };
        // `attempts` is optional so reports written before the retry
        // layer existed still parse (defaulting to one attempt).
        let attempts = match fields.get("attempts") {
            None => 1,
            Some(v) => v.as_u64().and_then(|n| u32::try_from(n).ok()).ok_or_else(
                || format!("line {}: `attempts` must be a small integer", number + 1),
            )?,
        };
        reports.push(JobReport {
            job_id: str_field("job_id")?,
            watermark_hex: str_field("watermark_hex")?,
            seed: num_field("seed")?,
            status: JobStatus::parse(&str_field("status")?),
            attempts,
            wall_ms: num_field("wall_ms")?,
        });
    }
    Ok(reports)
}

/// Crash-safe, resumable report output.
///
/// Outcome lines stream to a `<path>.partial` sidecar as jobs complete
/// (unbuffered, one `write` per line, so a crash loses at most the line
/// being written); [`ReportWriter::finalize`] then writes the full
/// ordered report to a temp file and atomically renames it onto the
/// target path. A reader therefore only ever sees either the previous
/// complete report or the new complete report — never a torn one.
///
/// [`ReportWriter::resume`] reopens the sidecar after a crash and
/// returns the outcomes already on disk (dropping a torn trailing
/// line), so a resumed run skips exactly the jobs that finished.
///
/// Long-lived writers (the serve daemon) can cap the sidecar with
/// [`ReportWriter::compact`]: settled outcomes are folded into a
/// rename-atomic `<path>.compact` segment and the `.partial` file
/// truncated, bounding its growth the same way the daemon's intents
/// journal is bounded. `resume` reads the segment before the sidecar,
/// so a compacted history survives a crash intact.
#[derive(Debug)]
pub struct ReportWriter {
    file: std::fs::File,
    partial: PathBuf,
    target: PathBuf,
    /// Bytes appended to the partial sidecar since the last
    /// compaction (or since create/resume).
    partial_bytes: u64,
}

impl ReportWriter {
    /// Starts a fresh report targeting `path`, truncating any leftover
    /// partial sidecar from an earlier crashed run.
    ///
    /// # Errors
    ///
    /// Whatever creating the sidecar reports.
    pub fn create(path: impl Into<PathBuf>) -> std::io::Result<ReportWriter> {
        let target = path.into();
        let partial = partial_path(&target);
        let _ = std::fs::remove_file(compact_path(&target));
        let file = std::fs::File::create(&partial)?;
        Ok(ReportWriter {
            file,
            partial,
            target,
            partial_bytes: 0,
        })
    }

    /// Resumes a crashed run targeting `path`: returns the writer plus
    /// every outcome already recorded — the compacted segment (if one
    /// exists) followed by the valid prefix of the partial sidecar (a
    /// torn trailing line is discarded and truncated away), else the
    /// finalized report if the previous run completed, else nothing.
    /// The segment is folded back into the rewritten sidecar and
    /// removed, so a resumed writer starts from one clean file.
    ///
    /// # Errors
    ///
    /// I/O errors reading or rewriting the sidecar.
    pub fn resume(path: impl Into<PathBuf>) -> std::io::Result<(ReportWriter, Vec<JobReport>)> {
        let target = path.into();
        let partial = partial_path(&target);
        let compact = compact_path(&target);
        let recorded = if compact.exists() || partial.exists() {
            // Segment first (it holds the older outcomes), then the
            // live sidecar; a crash between the segment rename and the
            // sidecar truncation can duplicate a job across the two, so
            // dedup by job id, first occurrence wins.
            let mut reports = if compact.exists() {
                valid_prefix(&std::fs::read_to_string(&compact)?)
            } else {
                Vec::new()
            };
            if partial.exists() {
                reports.extend(valid_prefix(&std::fs::read_to_string(&partial)?));
            }
            let mut seen = std::collections::HashSet::new();
            reports.retain(|r| seen.insert(r.job_id.clone()));
            reports
        } else if target.exists() {
            valid_prefix(&std::fs::read_to_string(&target)?)
        } else {
            Vec::new()
        };
        // Rewrite the sidecar from the parsed reports: this drops a torn
        // trailing line, folds the compacted segment back in, and
        // carries finalized outcomes forward, so the sidecar is always
        // exactly "what is done so far".
        let mut text = String::new();
        for report in &recorded {
            text.push_str(&report.to_line());
            text.push('\n');
        }
        std::fs::write(&partial, &text)?;
        let _ = std::fs::remove_file(&compact);
        let file = std::fs::OpenOptions::new().append(true).open(&partial)?;
        Ok((
            ReportWriter {
                file,
                partial,
                target,
                partial_bytes: text.len() as u64,
            },
            recorded,
        ))
    }

    /// Appends one outcome line and pushes it to the OS immediately.
    ///
    /// # Errors
    ///
    /// Whatever the underlying write reports.
    pub fn append(&mut self, report: &JobReport) -> std::io::Result<()> {
        let mut line = report.to_line();
        line.push('\n');
        // The file is unbuffered: one write_all per line IS the
        // per-line flush.
        self.file.write_all(line.as_bytes())?;
        self.partial_bytes += line.len() as u64;
        Ok(())
    }

    /// Bytes currently in the partial sidecar.
    pub fn partial_bytes(&self) -> u64 {
        self.partial_bytes
    }

    /// Folds `settled` (every outcome recorded so far, in the caller's
    /// canonical order) into the rename-atomic `<path>.compact` segment
    /// and truncates the partial sidecar, resetting the byte counter.
    /// A crash mid-compaction leaves the previous segment intact; a
    /// crash between the rename and the truncation at worst duplicates
    /// outcomes across segment and sidecar, which `resume` dedups.
    ///
    /// # Errors
    ///
    /// I/O errors writing the segment or truncating the sidecar.
    pub fn compact(&mut self, settled: &[JobReport]) -> std::io::Result<()> {
        let mut text = String::new();
        for report in settled {
            text.push_str(&report.to_line());
            text.push('\n');
        }
        let compact = compact_path(&self.target);
        let tmp = {
            let mut name = compact.file_name().unwrap_or_default().to_os_string();
            name.push(".tmp");
            compact.with_file_name(name)
        };
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &compact)?;
        // Everything the sidecar held is durable in the segment:
        // truncate and start appending fresh.
        self.file = std::fs::File::create(&self.partial)?;
        self.partial_bytes = 0;
        Ok(())
    }

    /// Writes `ordered` (the complete report, in manifest order) to a
    /// temp file, fsyncs it, atomically renames it onto the target
    /// path, and removes the partial sidecar.
    ///
    /// # Errors
    ///
    /// I/O errors writing, syncing, or renaming.
    pub fn finalize(self, ordered: &[JobReport]) -> std::io::Result<()> {
        let mut text = String::new();
        for report in ordered {
            text.push_str(&report.to_line());
            text.push('\n');
        }
        let tmp = self.target.with_extension("jsonl.tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, &self.target)?;
        // Losing the sidecar cleanup is harmless: the next create or
        // resume rewrites it.
        let _ = std::fs::remove_file(&self.partial);
        let _ = std::fs::remove_file(compact_path(&self.target));
        Ok(())
    }

    /// Where outcome lines stream before finalization.
    pub fn partial_path(&self) -> &Path {
        &self.partial
    }

    /// Where the finalized report lands.
    pub fn target_path(&self) -> &Path {
        &self.target
    }
}

fn partial_path(target: &Path) -> PathBuf {
    let mut name = target.file_name().unwrap_or_default().to_os_string();
    name.push(".partial");
    target.with_file_name(name)
}

fn compact_path(target: &Path) -> PathBuf {
    let mut name = target.file_name().unwrap_or_default().to_os_string();
    name.push(".compact");
    target.with_file_name(name)
}

/// Parses the longest valid prefix of a report file, dropping a torn
/// trailing line (the crash case) and anything after it.
fn valid_prefix(text: &str) -> Vec<JobReport> {
    let mut reports = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match parse_report(trimmed) {
            Ok(mut parsed) => reports.append(&mut parsed),
            Err(_) => break,
        }
    }
    reports
}

/// Formats a watermark value as lowercase hex (the manifest encoding).
pub fn to_hex(value: &BigUint) -> String {
    format!("{value:x}")
}

/// Parses the manifest hex encoding back into a value.
///
/// # Errors
///
/// A message naming the offending character, or empty input.
pub fn parse_hex(s: &str) -> Result<BigUint, String> {
    if s.is_empty() {
        return Err("empty hex value".to_string());
    }
    let mut value = BigUint::zero();
    for c in s.chars() {
        let digit = c
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{c}`"))?;
        value = &(&value << 4) + &BigUint::from(digit as u64);
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip_with_comments() {
        let text = "\n# header comment\n{\"job_id\":\"a\"}\n  \n\
                    {\"job_id\":\"b\",\"seed\":42}\n\
                    {\"job_id\":\"c\",\"watermark_hex\":\"deadbeef\",\"seed\":7}\n";
        let specs = parse_manifest(text).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0], EmbedJobSpec::new("a"));
        assert_eq!(specs[1].seed, Some(42));
        assert_eq!(specs[2].watermark_hex.as_deref(), Some("deadbeef"));
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let err = parse_manifest("{\"job_id\":\"a\"}\n{\"seed\":1}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_manifest("{\"job_id\":7}").unwrap_err();
        assert!(err.contains("must be a string"), "{err}");
    }

    #[test]
    fn report_lines_round_trip_and_parse_as_manifest() {
        let report = JobReport {
            job_id: "copy-003".to_string(),
            watermark_hex: "8f3a".to_string(),
            seed: 1234,
            status: JobStatus::Failed("trace budget exceeded".to_string()),
            attempts: 2,
            wall_ms: 17,
        };
        let line = report.to_line();
        let parsed = parse_report(&line).unwrap();
        assert_eq!(parsed, vec![report.clone()]);
        // The same line works as a manifest: the copy keeps its identity.
        let specs = parse_manifest(&line).unwrap();
        assert_eq!(specs[0].job_id, "copy-003");
        assert_eq!(specs[0].watermark_hex.as_deref(), Some("8f3a"));
        assert_eq!(specs[0].seed, Some(1234));
    }

    #[test]
    fn statuses_round_trip() {
        for status in [
            JobStatus::Ok,
            JobStatus::NotFound,
            JobStatus::Mismatch,
            JobStatus::TimedOut,
            JobStatus::Failed("why: because".to_string()),
        ] {
            assert_eq!(JobStatus::parse(&status.render()), status);
        }
        assert!(JobStatus::Ok.is_ok());
        assert!(!JobStatus::NotFound.is_ok());
        assert!(!JobStatus::TimedOut.is_ok());
    }

    #[test]
    fn reports_without_attempts_parse_with_default_one() {
        // A line written before the retry layer existed.
        let line = "{\"job_id\":\"old\",\"watermark_hex\":\"ff\",\"seed\":3,\
                    \"status\":\"ok\",\"wall_ms\":5}";
        let parsed = parse_report(line).unwrap();
        assert_eq!(parsed[0].attempts, 1);
    }

    #[test]
    fn derived_seeds_and_watermarks_are_distinct_and_reproducible() {
        let base = WatermarkKey::new(0xF1EE7, vec![1, 2]);
        let config = JavaConfig::for_watermark_bits(64);
        let a = EmbedJobSpec::new("copy-000");
        let b = EmbedJobSpec::new("copy-001");
        assert_ne!(a.effective_seed(base.seed), b.effective_seed(base.seed));
        assert_eq!(a.effective_seed(base.seed), a.effective_seed(base.seed));
        let wa = a.watermark(&base, &config).unwrap();
        let wb = b.watermark(&base, &config).unwrap();
        assert_ne!(wa.value(), wb.value());
        assert_eq!(
            a.watermark(&base, &config).unwrap().value(),
            wa.value(),
            "derivation is deterministic"
        );
        // Keys share the secret input but not the numeric secret.
        let ka = a.effective_key(&base);
        assert_eq!(ka.input, base.input);
        assert_ne!(ka.seed, base.seed);
    }

    #[test]
    fn explicit_watermark_hex_wins() {
        let base = WatermarkKey::new(1, vec![]);
        let config = JavaConfig::for_watermark_bits(64);
        let spec = EmbedJobSpec {
            job_id: "x".to_string(),
            watermark_hex: Some("ff00".to_string()),
            seed: None,
        };
        let w = spec.watermark(&base, &config).unwrap();
        assert_eq!(to_hex(w.value()), "ff00");
        let bad = EmbedJobSpec {
            watermark_hex: Some("xyz".to_string()),
            ..spec
        };
        assert!(bad.watermark(&base, &config).is_err());
    }

    #[test]
    fn hex_round_trip() {
        for text in ["0", "1", "deadbeef", "8f3a9c0012"] {
            assert_eq!(to_hex(&parse_hex(text).unwrap()), text);
        }
        assert!(parse_hex("").is_err());
    }

    fn sample_report(n: u32) -> JobReport {
        JobReport {
            job_id: format!("copy-{n:03}"),
            watermark_hex: format!("{n:x}"),
            seed: u64::from(n) * 7,
            status: JobStatus::Ok,
            attempts: 1,
            wall_ms: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pathmark-manifest-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn report_writer_streams_finalizes_and_cleans_up() {
        let dir = temp_dir("finalize");
        let target = dir.join("report.jsonl");
        let reports: Vec<JobReport> = (0..3).map(sample_report).collect();

        let mut writer = ReportWriter::create(&target).unwrap();
        // Lines stream out of order (completion order) …
        writer.append(&reports[2]).unwrap();
        writer.append(&reports[0]).unwrap();
        writer.append(&reports[1]).unwrap();
        let partial = writer.partial_path().to_path_buf();
        assert!(partial.exists());
        assert!(!target.exists(), "nothing at the target until finalize");

        // … but the finalized report is in manifest order.
        writer.finalize(&reports).unwrap();
        assert!(target.exists());
        assert!(!partial.exists(), "sidecar removed after finalize");
        let parsed = parse_report(&std::fs::read_to_string(&target).unwrap()).unwrap();
        assert_eq!(parsed, reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_recovers_the_valid_prefix_and_drops_a_torn_line() {
        let dir = temp_dir("resume");
        let target = dir.join("report.jsonl");
        let reports: Vec<JobReport> = (0..3).map(sample_report).collect();

        // Simulate a crash: two full lines plus a torn third.
        let mut text = String::new();
        text.push_str(&reports[0].to_line());
        text.push('\n');
        text.push_str(&reports[1].to_line());
        text.push('\n');
        text.push_str(&reports[2].to_line()[..10]);
        std::fs::write(dir.join("report.jsonl.partial"), &text).unwrap();

        let (mut writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert_eq!(recorded, reports[..2], "torn line dropped");
        writer.append(&reports[2]).unwrap();
        let on_disk =
            parse_report(&std::fs::read_to_string(writer.partial_path()).unwrap()).unwrap();
        assert_eq!(on_disk, reports, "sidecar rewritten clean, then appended");
        writer.finalize(&reports).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_bounds_the_sidecar_and_survives_resume() {
        let dir = temp_dir("compact");
        let target = dir.join("report.jsonl");
        let reports: Vec<JobReport> = (0..4).map(sample_report).collect();

        let mut writer = ReportWriter::create(&target).unwrap();
        writer.append(&reports[0]).unwrap();
        writer.append(&reports[1]).unwrap();
        let before = writer.partial_bytes();
        assert!(before > 0, "appends are counted");

        // Fold the settled outcomes into the segment; the sidecar
        // shrinks to zero and keeps accepting appends.
        writer.compact(&reports[..2]).unwrap();
        assert_eq!(writer.partial_bytes(), 0);
        assert!(std::fs::read_to_string(writer.partial_path())
            .unwrap()
            .is_empty());
        assert!(dir.join("report.jsonl.compact").exists());
        writer.append(&reports[2]).unwrap();
        assert!(writer.partial_bytes() < before);
        drop(writer);

        // A crashed (dropped) writer resumes with the segment's history
        // folded back in front of the live sidecar, as one clean file.
        let (mut writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert_eq!(recorded, reports[..3]);
        assert!(
            !dir.join("report.jsonl.compact").exists(),
            "the segment is folded back into the sidecar on resume"
        );
        writer.append(&reports[3]).unwrap();

        // Finalize cleans up segment and sidecar alike.
        writer.finalize(&reports).unwrap();
        assert!(!dir.join("report.jsonl.partial").exists());
        assert!(!dir.join("report.jsonl.compact").exists());
        let parsed = parse_report(&std::fs::read_to_string(&target).unwrap()).unwrap();
        assert_eq!(parsed, reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_dedups_outcomes_duplicated_across_segment_and_sidecar() {
        let dir = temp_dir("compact-dup");
        let target = dir.join("report.jsonl");
        let reports: Vec<JobReport> = (0..3).map(sample_report).collect();

        // Simulate a crash between the segment rename and the sidecar
        // truncation: both files hold copy-001.
        let mut segment = String::new();
        segment.push_str(&reports[0].to_line());
        segment.push('\n');
        segment.push_str(&reports[1].to_line());
        segment.push('\n');
        std::fs::write(dir.join("report.jsonl.compact"), &segment).unwrap();
        let mut sidecar = String::new();
        sidecar.push_str(&reports[1].to_line());
        sidecar.push('\n');
        sidecar.push_str(&reports[2].to_line());
        sidecar.push('\n');
        std::fs::write(dir.join("report.jsonl.partial"), &sidecar).unwrap();

        let (_writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert_eq!(recorded, reports, "segment first, duplicates dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_after_finalize_reads_the_finalized_report() {
        let dir = temp_dir("resume-done");
        let target = dir.join("report.jsonl");
        let reports: Vec<JobReport> = (0..2).map(sample_report).collect();

        let writer = ReportWriter::create(&target).unwrap();
        writer.finalize(&reports).unwrap();

        let (_writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert_eq!(recorded, reports, "a completed run resumes as fully done");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_no_prior_state_starts_empty() {
        let dir = temp_dir("resume-fresh");
        let target = dir.join("report.jsonl");
        let (_writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert!(recorded.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    // The zero-complete-lines edge cases: a crash so early that the
    // sidecar holds no full outcome line must resume as an *empty*
    // report — usable, not an error — and the next run must stream and
    // finalize normally.

    #[test]
    fn resume_with_an_empty_sidecar_is_an_empty_report() {
        let dir = temp_dir("resume-empty");
        let target = dir.join("report.jsonl");
        // A crash between sidecar creation and the first append.
        std::fs::write(dir.join("report.jsonl.partial"), "").unwrap();

        let (mut writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert!(recorded.is_empty(), "zero complete lines resume as empty");
        let reports: Vec<JobReport> = (0..2).map(sample_report).collect();
        writer.append(&reports[0]).unwrap();
        writer.append(&reports[1]).unwrap();
        writer.finalize(&reports).unwrap();
        let parsed = parse_report(&std::fs::read_to_string(&target).unwrap()).unwrap();
        assert_eq!(parsed, reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_only_a_torn_line_is_an_empty_report() {
        let dir = temp_dir("resume-torn-only");
        let target = dir.join("report.jsonl");
        // A crash mid-way through the very first outcome line.
        let torn = &sample_report(0).to_line()[..10];
        std::fs::write(dir.join("report.jsonl.partial"), torn).unwrap();

        let (mut writer, recorded) = ReportWriter::resume(&target).unwrap();
        assert!(recorded.is_empty(), "a lone torn line resumes as empty");
        let sidecar = std::fs::read_to_string(writer.partial_path()).unwrap();
        assert!(sidecar.is_empty(), "sidecar rewritten clean of the torn tail");

        let reports: Vec<JobReport> = (0..2).map(sample_report).collect();
        writer.append(&reports[0]).unwrap();
        writer.append(&reports[1]).unwrap();
        writer.finalize(&reports).unwrap();
        let parsed = parse_report(&std::fs::read_to_string(&target).unwrap()).unwrap();
        assert_eq!(parsed, reports);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
