//! The JSONL batch manifest and report format.
//!
//! A **manifest** drives a batch: one JSON object per line, each naming
//! one copy to fingerprint. Blank lines and `#` comments are skipped.
//!
//! ```text
//! # 64-copy distribution run
//! {"job_id":"copy-000"}
//! {"job_id":"copy-001","seed":1234}
//! {"job_id":"copy-002","watermark_hex":"8f3a9c"}
//! ```
//!
//! Fields other than `job_id` are optional:
//!
//! * `seed` — the per-copy numeric secret. Defaults to
//!   `base_seed XOR fnv1a(job_id)`, so every copy gets a distinct,
//!   reproducible key derived from the batch key.
//! * `watermark_hex` — the copy's watermark `W_i` in hex. Defaults to a
//!   watermark drawn deterministically from the per-copy seed.
//!
//! A **report** is the output side: one line per job with the resolved
//! `watermark_hex` and `seed`, a `status`, and the job's wall-clock
//! time. Report lines are a superset of manifest lines, so a report can
//! be fed back in as the manifest of a recognition run.

use std::fmt;

use pathmark_core::java::JavaConfig;
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_crypto::Prng;
use pathmark_math::bigint::BigUint;

use crate::cache::fnv1a;
use crate::json::{parse_object, write_object, Scalar};

/// One manifest line: a copy to fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedJobSpec {
    /// Identifies the copy (and names its output file).
    pub job_id: String,
    /// Explicit watermark `W_i` in lowercase hex, if pinned.
    pub watermark_hex: Option<String>,
    /// Explicit per-copy numeric secret, if pinned.
    pub seed: Option<u64>,
}

impl EmbedJobSpec {
    /// A spec with derived seed and watermark.
    pub fn new(job_id: impl Into<String>) -> EmbedJobSpec {
        EmbedJobSpec {
            job_id: job_id.into(),
            watermark_hex: None,
            seed: None,
        }
    }

    /// The copy's numeric secret: the explicit `seed` field, or a
    /// distinct reproducible value derived from the batch seed and the
    /// job id.
    pub fn effective_seed(&self, base_seed: u64) -> u64 {
        self.seed
            .unwrap_or_else(|| base_seed ^ fnv1a(self.job_id.as_bytes()))
    }

    /// The copy's full key under the batch key: per-copy numeric secret,
    /// shared secret input (so all copies trace identically).
    pub fn effective_key(&self, base: &WatermarkKey) -> WatermarkKey {
        WatermarkKey::new(self.effective_seed(base.seed), base.input.clone())
    }

    /// Resolves the copy's watermark `W_i`: the explicit hex value, or a
    /// watermark drawn deterministically from the per-copy seed.
    ///
    /// # Errors
    ///
    /// A message if `watermark_hex` is present but not valid hex.
    pub fn watermark(
        &self,
        base: &WatermarkKey,
        config: &JavaConfig,
    ) -> Result<Watermark, String> {
        match &self.watermark_hex {
            Some(hex) => Ok(Watermark::from_value(
                parse_hex(hex)?,
                config.watermark_bits,
            )),
            None => {
                let mut rng = Prng::from_seed(self.effective_seed(base.seed) ^ 0x57_4d46);
                Ok(Watermark::random(config.watermark_bits, &mut rng))
            }
        }
    }
}

/// A job's terminal state in a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Embedded, or recognized with the expected watermark.
    Ok,
    /// The job failed; the payload says why (including panics).
    Failed(String),
    /// Recognition could not pin down a watermark.
    NotFound,
    /// Recognition recovered a watermark, but not the expected one.
    Mismatch,
}

impl JobStatus {
    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    fn render(&self) -> String {
        match self {
            JobStatus::Ok => "ok".to_string(),
            JobStatus::Failed(why) => format!("failed: {why}"),
            JobStatus::NotFound => "not-found".to_string(),
            JobStatus::Mismatch => "mismatch".to_string(),
        }
    }

    fn parse(text: &str) -> JobStatus {
        match text {
            "ok" => JobStatus::Ok,
            "not-found" => JobStatus::NotFound,
            "mismatch" => JobStatus::Mismatch,
            other => JobStatus::Failed(
                other
                    .strip_prefix("failed: ")
                    .unwrap_or(other)
                    .to_string(),
            ),
        }
    }
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// One report line: a job's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// The copy's id, echoed from the manifest.
    pub job_id: String,
    /// The resolved watermark `W_i` in lowercase hex.
    pub watermark_hex: String,
    /// The resolved per-copy numeric secret.
    pub seed: u64,
    /// Terminal state.
    pub status: JobStatus,
    /// Wall-clock duration of the job in milliseconds.
    pub wall_ms: u64,
}

impl JobReport {
    /// Serializes the report as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        write_object(&[
            ("job_id", Scalar::Str(self.job_id.clone())),
            ("watermark_hex", Scalar::Str(self.watermark_hex.clone())),
            ("seed", Scalar::Num(self.seed)),
            ("status", Scalar::Str(self.status.render())),
            ("wall_ms", Scalar::Num(self.wall_ms)),
        ])
    }
}

/// Parses a manifest: one JSON object per line, `#` comments and blank
/// lines skipped. Report lines parse too (their extra fields are
/// accepted), so a previous embed report can drive a recognition run.
///
/// # Errors
///
/// A `line N: …` message naming the first malformed line.
pub fn parse_manifest(text: &str) -> Result<Vec<EmbedJobSpec>, String> {
    let mut specs = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields =
            parse_object(line).map_err(|e| format!("line {}: {e}", number + 1))?;
        let field_str = |name: &str| -> Result<Option<String>, String> {
            match fields.get(name) {
                None => Ok(None),
                Some(v) => v
                    .as_str()
                    .map(|s| Some(s.to_string()))
                    .ok_or_else(|| format!("line {}: `{name}` must be a string", number + 1)),
            }
        };
        let job_id = field_str("job_id")?
            .ok_or_else(|| format!("line {}: missing `job_id`", number + 1))?;
        let seed = match fields.get("seed") {
            None => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or_else(|| format!("line {}: `seed` must be an integer", number + 1))?,
            ),
        };
        specs.push(EmbedJobSpec {
            job_id,
            watermark_hex: field_str("watermark_hex")?,
            seed,
        });
    }
    Ok(specs)
}

/// Parses a report produced by [`JobReport::to_line`] lines.
///
/// # Errors
///
/// A `line N: …` message naming the first malformed line.
pub fn parse_report(text: &str) -> Result<Vec<JobReport>, String> {
    let mut reports = Vec::new();
    for (number, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields =
            parse_object(line).map_err(|e| format!("line {}: {e}", number + 1))?;
        let str_field = |name: &str| -> Result<String, String> {
            fields
                .get(name)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or_else(|| format!("line {}: missing string `{name}`", number + 1))
        };
        let num_field = |name: &str| -> Result<u64, String> {
            fields
                .get(name)
                .and_then(|v| v.as_u64())
                .ok_or_else(|| format!("line {}: missing integer `{name}`", number + 1))
        };
        reports.push(JobReport {
            job_id: str_field("job_id")?,
            watermark_hex: str_field("watermark_hex")?,
            seed: num_field("seed")?,
            status: JobStatus::parse(&str_field("status")?),
            wall_ms: num_field("wall_ms")?,
        });
    }
    Ok(reports)
}

/// Formats a watermark value as lowercase hex (the manifest encoding).
pub fn to_hex(value: &BigUint) -> String {
    format!("{value:x}")
}

/// Parses the manifest hex encoding back into a value.
///
/// # Errors
///
/// A message naming the offending character, or empty input.
pub fn parse_hex(s: &str) -> Result<BigUint, String> {
    if s.is_empty() {
        return Err("empty hex value".to_string());
    }
    let mut value = BigUint::zero();
    for c in s.chars() {
        let digit = c
            .to_digit(16)
            .ok_or_else(|| format!("bad hex digit `{c}`"))?;
        value = &(&value << 4) + &BigUint::from(digit as u64);
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trip_with_comments() {
        let text = "\n# header comment\n{\"job_id\":\"a\"}\n  \n\
                    {\"job_id\":\"b\",\"seed\":42}\n\
                    {\"job_id\":\"c\",\"watermark_hex\":\"deadbeef\",\"seed\":7}\n";
        let specs = parse_manifest(text).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0], EmbedJobSpec::new("a"));
        assert_eq!(specs[1].seed, Some(42));
        assert_eq!(specs[2].watermark_hex.as_deref(), Some("deadbeef"));
    }

    #[test]
    fn manifest_errors_name_the_line() {
        let err = parse_manifest("{\"job_id\":\"a\"}\n{\"seed\":1}\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_manifest("{\"job_id\":7}").unwrap_err();
        assert!(err.contains("must be a string"), "{err}");
    }

    #[test]
    fn report_lines_round_trip_and_parse_as_manifest() {
        let report = JobReport {
            job_id: "copy-003".to_string(),
            watermark_hex: "8f3a".to_string(),
            seed: 1234,
            status: JobStatus::Failed("trace budget exceeded".to_string()),
            wall_ms: 17,
        };
        let line = report.to_line();
        let parsed = parse_report(&line).unwrap();
        assert_eq!(parsed, vec![report.clone()]);
        // The same line works as a manifest: the copy keeps its identity.
        let specs = parse_manifest(&line).unwrap();
        assert_eq!(specs[0].job_id, "copy-003");
        assert_eq!(specs[0].watermark_hex.as_deref(), Some("8f3a"));
        assert_eq!(specs[0].seed, Some(1234));
    }

    #[test]
    fn statuses_round_trip() {
        for status in [
            JobStatus::Ok,
            JobStatus::NotFound,
            JobStatus::Mismatch,
            JobStatus::Failed("why: because".to_string()),
        ] {
            assert_eq!(JobStatus::parse(&status.render()), status);
        }
        assert!(JobStatus::Ok.is_ok());
        assert!(!JobStatus::NotFound.is_ok());
    }

    #[test]
    fn derived_seeds_and_watermarks_are_distinct_and_reproducible() {
        let base = WatermarkKey::new(0xF1EE7, vec![1, 2]);
        let config = JavaConfig::for_watermark_bits(64);
        let a = EmbedJobSpec::new("copy-000");
        let b = EmbedJobSpec::new("copy-001");
        assert_ne!(a.effective_seed(base.seed), b.effective_seed(base.seed));
        assert_eq!(a.effective_seed(base.seed), a.effective_seed(base.seed));
        let wa = a.watermark(&base, &config).unwrap();
        let wb = b.watermark(&base, &config).unwrap();
        assert_ne!(wa.value(), wb.value());
        assert_eq!(
            a.watermark(&base, &config).unwrap().value(),
            wa.value(),
            "derivation is deterministic"
        );
        // Keys share the secret input but not the numeric secret.
        let ka = a.effective_key(&base);
        assert_eq!(ka.input, base.input);
        assert_ne!(ka.seed, base.seed);
    }

    #[test]
    fn explicit_watermark_hex_wins() {
        let base = WatermarkKey::new(1, vec![]);
        let config = JavaConfig::for_watermark_bits(64);
        let spec = EmbedJobSpec {
            job_id: "x".to_string(),
            watermark_hex: Some("ff00".to_string()),
            seed: None,
        };
        let w = spec.watermark(&base, &config).unwrap();
        assert_eq!(to_hex(w.value()), "ff00");
        let bad = EmbedJobSpec {
            watermark_hex: Some("xyz".to_string()),
            ..spec
        };
        assert!(bad.watermark(&base, &config).is_err());
    }

    #[test]
    fn hex_round_trip() {
        for text in ["0", "1", "deadbeef", "8f3a9c0012"] {
            assert_eq!(to_hex(&parse_hex(text).unwrap()), text);
        }
        assert!(parse_hex("").is_err());
    }
}
