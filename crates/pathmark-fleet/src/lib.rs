//! `pathmark-fleet` — parallel batch fingerprinting & recognition.
//!
//! The paper's stated deployment model is *fingerprinting*: embed a
//! **distinct** watermark `W_i` into each distributed copy so that a
//! leaked copy identifies the leaker (Section 2). At distribution scale
//! that means embedding and recognizing thousands of copies per run, not
//! one CLI invocation at a time. This crate is that batch layer, built
//! entirely on `std` (no external dependencies):
//!
//! * [`pool`] — a hand-rolled worker pool (`std::thread` plus a
//!   `Mutex`/`Condvar` job queue) with graceful shutdown and per-job
//!   panic isolation: one poisoned job must not kill the batch.
//! * [`cache`] — a trace cache that runs
//!   [`pathmark_core::java::trace_program`] once per (program, secret
//!   input) and shares the immutable trace across all N embed jobs via
//!   [`std::sync::Arc`]. Tracing is the only embedding step that
//!   executes the program, so this turns N traced runs into one.
//! * [`shard`] — sharded recognition: the traced bit-string is split
//!   into overlapping 64-bit-window chunks scanned in parallel; the
//!   candidate multisets are merged before voting and GCRT
//!   recombination, producing output bit-identical to the serial
//!   recognizer.
//! * [`manifest`] — the JSONL batch manifest/report format
//!   (`job_id`, `watermark_hex`, `seed`, `status`, `attempts`,
//!   `wall_ms`), written with the workspace's hand-rolled codec idioms
//!   ([`json`]), plus the crash-safe [`manifest::ReportWriter`] that
//!   streams outcome lines to a `.partial` sidecar and atomically
//!   renames the finalized report into place — the storage half of
//!   `--resume`.
//! * [`retry`] — bounded retries with exponential backoff and the
//!   transient/permanent failure taxonomy that decides what is worth
//!   re-running.
//! * [`faults`] — deterministic fault injection (panics, transient and
//!   permanent errors, delays, keyed by job index) so every recovery
//!   path is exercised by ordinary tests.
//! * [`batch`] — the engine tying the above together: batch embed and
//!   batch recognize over a manifest, with per-job retries, deadlines,
//!   and streaming outcome callbacks via [`batch::BatchOptions`].
//!
//! The batch engine consumes the session objects of
//! [`pathmark_core::java`] ([`pathmark_core::java::Embedder`] /
//! [`pathmark_core::java::Recognizer`]): one validated session per
//! batch, from which a per-copy session is derived per job. A session
//! built with a telemetry sink propagates it everywhere — build the
//! pool with [`pool::WorkerPool::with_telemetry`] and the cache with
//! [`cache::TraceCache::with_telemetry`] to also capture queue-wait /
//! run-time spans and trace-cache hit/miss counters in the same sink.
//!
//! # Example
//!
//! ```
//! use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
//! use pathmark_core::key::WatermarkKey;
//! use pathmark_fleet::batch::{embed_batch, recognize_batch, RecognizeJob};
//! use pathmark_fleet::cache::TraceCache;
//! use pathmark_fleet::manifest::EmbedJobSpec;
//! use pathmark_fleet::pool::WorkerPool;
//! use stackvm::builder::{FunctionBuilder, ProgramBuilder};
//! use stackvm::insn::Cond;
//!
//! // A toy host program with a loop (so the trace has cold spots).
//! let mut pb = ProgramBuilder::new();
//! let mut f = FunctionBuilder::new("main", 0, 2);
//! let head = f.new_label();
//! let out = f.new_label();
//! f.push(0).store(0);
//! f.bind(head);
//! f.load(0).push(8).if_cmp(Cond::Ge, out);
//! f.load(0).load(1).add().store(1);
//! f.iinc(0, 1).goto(head);
//! f.bind(out);
//! f.load(1).print().ret_void();
//! let main = pb.add_function(f.finish()?);
//! let program = pb.finish(main)?;
//!
//! let key = WatermarkKey::new(0xF1EE7, vec![3, 1, 4]);
//! let config = JavaConfig::for_watermark_bits(64).with_pieces(12);
//! let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
//! let pool = WorkerPool::new(4);
//! let cache = TraceCache::new();
//!
//! // Four copies, each with its own derived watermark.
//! let jobs: Vec<EmbedJobSpec> = (0..4)
//!     .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
//!     .collect();
//! let embedded = embed_batch(&program, &embedder, &jobs, &pool, &cache)?;
//! assert!(embedded.iter().all(|o| o.marked.is_some()));
//!
//! // Recognize every copy and check it recovers its own W_i.
//! let recognizer = Recognizer::builder(key, config).build()?;
//! // A failed embed leaves no program behind, so the conversion is
//! // fallible; keep only the copies that actually embedded.
//! let rec_jobs: Vec<RecognizeJob> = embedded
//!     .iter()
//!     .filter_map(|o| RecognizeJob::try_from(o).ok())
//!     .collect();
//! let recognized = recognize_batch(&rec_jobs, &recognizer, &pool);
//! assert!(recognized.iter().all(|o| o.report.status.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod batch;
pub mod cache;
pub mod faults;
pub mod json;
pub mod manifest;
pub mod pool;
pub mod retry;
pub mod shard;
