//! The batch engine: embed or recognize a whole manifest of copies on
//! the worker pool.
//!
//! **Embedding** a batch traces the host program *once* (through the
//! [`crate::cache::TraceCache`]) and shares the immutable trace across
//! all N jobs via `Arc`; each job then runs
//! [`Embedder::embed_with_trace`] under a per-copy session derived with
//! [`Embedder::with_key`] (same config and telemetry sink, per-copy
//! key). **Recognition** of a batch parallelizes across copies: each
//! copy is re-traced and recognized independently (the per-copy work is
//! already one job; sharded recognition — [`crate::shard`] — is for
//! splitting a *single* large copy instead).
//!
//! Per-job failures (bad manifest hex, embedding errors, panics) are
//! captured in the job's [`JobReport`] and never abort the rest of the
//! batch. The `_with` entry points layer fault tolerance on top:
//!
//! * transient failures (panics, injected transient faults) are re-run
//!   under [`BatchOptions::retry`], with exponential backoff;
//! * a job that overruns [`BatchOptions::deadline`] is reported as
//!   [`JobStatus::TimedOut`] and its worker replaced;
//! * every settled outcome is handed to the `on_outcome` callback on
//!   the calling thread, in completion order — the hook the crash-safe
//!   manifest writer streams from.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pathmark_core::java::{Embedder, Recognition, Recognizer};
use pathmark_core::key::WatermarkKey;
use pathmark_core::WatermarkError;
use stackvm::trace::TraceConfig;
use stackvm::Program;

use crate::cache::TraceCache;
use crate::faults::FaultPlan;
use crate::manifest::{to_hex, EmbedJobSpec, JobReport, JobStatus};
use crate::pool::{JobFailure, RunOptions, WorkerPool};
use crate::retry::{run_with_retry, AttemptFailure, RetryPolicy};

/// Fault-tolerance knobs for one batch run.
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// How many times to re-run a job after a transient failure. The
    /// default retries nothing (one attempt per job).
    pub retry: RetryPolicy,
    /// Per-job wall-clock deadline; overrunning jobs settle as
    /// [`JobStatus::TimedOut`]. `None` (the default) never times out.
    pub deadline: Option<Duration>,
    /// Injected faults, for tests. Production runs leave this empty.
    pub faults: FaultPlan,
}

/// The result of one embed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedOutcome {
    /// The job's report line.
    pub report: JobReport,
    /// The marked copy, when the job succeeded.
    pub marked: Option<Program>,
}

/// One copy to recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizeJob {
    /// Identifies the copy in the report.
    pub job_id: String,
    /// The (possibly attacked) copy.
    pub program: Program,
    /// The watermark the copy is supposed to carry, if known: recovering
    /// a different value is reported as [`JobStatus::Mismatch`].
    pub expected_hex: Option<String>,
    /// The copy's numeric secret (from the embed report).
    pub seed: u64,
}

/// The result of one recognize job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizeOutcome {
    /// The job's report line. `watermark_hex` holds the *recovered*
    /// value when recognition pinned one down, else the expected value.
    pub report: JobReport,
    /// Full recognition detail, when the copy traced successfully.
    pub recognition: Option<Recognition>,
}

/// Error converting an [`EmbedOutcome`] into a [`RecognizeJob`]: the
/// embed job failed, so there is no marked program to recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NoMarkedProgram {
    /// The failed embed job's id.
    pub job_id: String,
    /// The embed job's terminal status (why there is no program).
    pub status: JobStatus,
}

impl std::fmt::Display for NoMarkedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "embed job `{}` produced no marked program ({})",
            self.job_id, self.status
        )
    }
}

impl std::error::Error for NoMarkedProgram {}

impl TryFrom<&EmbedOutcome> for RecognizeJob {
    type Error = NoMarkedProgram;

    /// The round-trip conversion: verify that a freshly embedded copy
    /// carries the watermark its report claims. Fails (instead of
    /// panicking, as an earlier `From` impl did) when the embed job
    /// failed and left no marked program behind.
    fn try_from(outcome: &EmbedOutcome) -> Result<RecognizeJob, NoMarkedProgram> {
        match &outcome.marked {
            None => Err(NoMarkedProgram {
                job_id: outcome.report.job_id.clone(),
                status: outcome.report.status.clone(),
            }),
            Some(program) => Ok(RecognizeJob {
                job_id: outcome.report.job_id.clone(),
                program: program.clone(),
                expected_hex: Some(outcome.report.watermark_hex.clone()),
                seed: outcome.report.seed,
            }),
        }
    }
}

/// Embeds every manifest job into `program` on the pool, tracing the
/// host at most once via `cache`. Equivalent to [`embed_batch_with`]
/// with default options (no retries, no deadline, no faults) and no
/// streaming callback.
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the *host* program cannot be
/// traced on the key's secret input — then no job can run at all.
pub fn embed_batch(
    program: &Program,
    session: &Embedder,
    jobs: &[EmbedJobSpec],
    pool: &WorkerPool,
    cache: &TraceCache,
) -> Result<Vec<EmbedOutcome>, WatermarkError> {
    embed_batch_with(
        program,
        session,
        jobs,
        pool,
        cache,
        &BatchOptions::default(),
        |_| {},
    )
}

/// Runs exactly one embed job against a warm session and an
/// already-shared trace, producing the same report line the batch
/// engine would: the per-copy key and watermark are resolved with the
/// manifest rules ([`EmbedJobSpec::effective_key`] /
/// [`EmbedJobSpec::watermark`]), transient failures are retried under
/// `retry`, and typed errors are permanent. This is the single-job
/// kernel both [`embed_batch_with`] and the resident serve daemon call,
/// so a job's outcome is identical whichever engine ran it.
pub fn embed_one(
    session: &Embedder,
    host: &Arc<Program>,
    trace: &Arc<stackvm::trace::Trace>,
    spec: &EmbedJobSpec,
    retry: &RetryPolicy,
    telemetry: &pathmark_telemetry::Telemetry,
) -> EmbedOutcome {
    embed_one_faulted(session, host, trace, spec, retry, telemetry, &FaultPlan::none(), 0)
}

/// [`embed_one`] plus deterministic fault injection (tests only):
/// `faults` is consulted with this job's batch `index`.
#[allow(clippy::too_many_arguments)]
fn embed_one_faulted(
    base: &Embedder,
    host: &Arc<Program>,
    trace: &Arc<stackvm::trace::Trace>,
    spec: &EmbedJobSpec,
    policy: &RetryPolicy,
    telemetry: &pathmark_telemetry::Telemetry,
    faults: &FaultPlan,
    index: usize,
) -> EmbedOutcome {
    let started = Instant::now();
    let job_key = spec.effective_key(base.key());
    let job_session = base.with_key(job_key);
    // The watermark is resolved once, outside the retry loop: a
    // bad hex value is a manifest error, permanent by nature.
    let (status, watermark_hex, marked, attempts) =
        match spec.watermark(base.key(), base.config()) {
            Err(why) => (JobStatus::Failed(why), String::new(), None, 1),
            Ok(watermark) => {
                let hex = to_hex(watermark.value());
                let (result, attempts) = run_with_retry(policy, telemetry, |attempt| {
                    faults.apply(index, attempt)?;
                    job_session
                        .embed_with_trace(host, &watermark, trace)
                        .map_err(|e| AttemptFailure::from_watermark_error(&e))
                });
                match result {
                    Ok(m) => (JobStatus::Ok, hex, Some(m.program), attempts),
                    Err(f) => (JobStatus::Failed(f.message()), hex, None, attempts),
                }
            }
        };
    EmbedOutcome {
        report: JobReport {
            job_id: spec.job_id.clone(),
            watermark_hex,
            seed: job_session.key().seed,
            status,
            attempts,
            wall_ms: started.elapsed().as_millis() as u64,
        },
        marked,
    }
}

/// Embeds every manifest job with retries, deadlines, and fault
/// injection per `options`, streaming each settled outcome to
/// `on_outcome` (on the calling thread, in completion order) as well as
/// returning all outcomes in manifest order.
///
/// Failure handling per job:
///
/// * an unparseable `watermark_hex` is permanent — reported as
///   [`JobStatus::Failed`] after a single attempt;
/// * typed embedding errors are permanent (the pipeline is
///   deterministic) — reported as [`JobStatus::Failed`];
/// * panics and injected transient faults are retried up to the
///   policy's budget, then reported as [`JobStatus::Failed`];
/// * a job overrunning `options.deadline` is abandoned and reported as
///   [`JobStatus::TimedOut`] with `attempts = 0` and `wall_ms = 0` (its
///   true cost is unknowable — the worker never came back).
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the *host* program cannot be
/// traced on the key's secret input — then no job can run at all.
pub fn embed_batch_with(
    program: &Program,
    session: &Embedder,
    jobs: &[EmbedJobSpec],
    pool: &WorkerPool,
    cache: &TraceCache,
    options: &BatchOptions,
    mut on_outcome: impl FnMut(&EmbedOutcome),
) -> Result<Vec<EmbedOutcome>, WatermarkError> {
    // The one traced run every job shares. The trace depends on the
    // secret input, which all per-copy keys inherit from the batch key.
    let trace = cache.get_or_trace(
        program,
        session.key(),
        session.config(),
        TraceConfig::full(),
    )?;

    let host = Arc::new(program.clone());
    let base = session.clone();
    let policy = options.retry.clone();
    let faults = options.faults.clone();
    let telemetry = pool.telemetry().clone();
    let run_options = RunOptions {
        deadline: options.deadline,
    };
    let results = pool.run_all_with(
        jobs.to_vec(),
        move |index, spec: EmbedJobSpec| {
            embed_one_faulted(&base, &host, &trace, &spec, &policy, &telemetry, &faults, index)
        },
        &run_options,
        |index, result| match result {
            Ok(outcome) => on_outcome(outcome),
            Err(failure) => on_outcome(&failed_embed_outcome(
                &jobs[index],
                session.key().seed,
                failure,
            )),
        },
    );

    Ok(results
        .into_iter()
        .zip(jobs)
        .map(|(result, spec)| {
            result.unwrap_or_else(|failure| {
                failed_embed_outcome(spec, session.key().seed, &failure)
            })
        })
        .collect())
}

/// Synthesizes the outcome of an embed job that never produced one: it
/// panicked past the retry layer or overran its deadline. Deterministic
/// (zero attempts and wall time), so an interrupted run and its resume
/// agree on the report line.
fn failed_embed_outcome(
    spec: &EmbedJobSpec,
    base_seed: u64,
    failure: &JobFailure,
) -> EmbedOutcome {
    EmbedOutcome {
        report: JobReport {
            job_id: spec.job_id.clone(),
            watermark_hex: spec.watermark_hex.clone().unwrap_or_default(),
            seed: spec.effective_seed(base_seed),
            status: job_failure_status(failure),
            attempts: 0,
            wall_ms: 0,
        },
        marked: None,
    }
}

fn job_failure_status(failure: &JobFailure) -> JobStatus {
    match failure {
        JobFailure::Panic(panic) => JobStatus::Failed(panic.to_string()),
        JobFailure::TimedOut { .. } => JobStatus::TimedOut,
    }
}

/// Runs exactly one recognize job against a warm session, producing
/// the same report line the batch engine would: the copy is recognized
/// under its own key (the base key's secret input plus the copy's
/// seed), transient failures are retried under `retry`, and the
/// recovered value is checked against `expected_hex` when one is
/// claimed. The single-job kernel shared by [`recognize_batch_with`]
/// and the resident serve daemon.
pub fn recognize_one(
    session: &Recognizer,
    job: &RecognizeJob,
    retry: &RetryPolicy,
    telemetry: &pathmark_telemetry::Telemetry,
) -> RecognizeOutcome {
    recognize_one_faulted(session, job, retry, telemetry, &FaultPlan::none(), 0)
}

/// [`recognize_one`] plus deterministic fault injection (tests only):
/// `faults` is consulted with this job's batch `index`.
fn recognize_one_faulted(
    base: &Recognizer,
    job: &RecognizeJob,
    policy: &RetryPolicy,
    telemetry: &pathmark_telemetry::Telemetry,
    faults: &FaultPlan,
    index: usize,
) -> RecognizeOutcome {
    let started = Instant::now();
    let job_key = WatermarkKey::new(job.seed, base.key().input.clone());
    let job_session = base.with_key(job_key);
    let (result, attempts) = run_with_retry(policy, telemetry, |attempt| {
        faults.apply(index, attempt)?;
        job_session
            .recognize(&job.program)
            .map_err(|e| AttemptFailure::from_watermark_error(&e))
    });
    let (status, watermark_hex, recognition) = match result {
        Err(failure) => (
            JobStatus::Failed(failure.message()),
            job.expected_hex.clone().unwrap_or_default(),
            None,
        ),
        Ok(rec) => {
            let outcome = match (&rec.watermark, &job.expected_hex) {
                (None, _) => (
                    JobStatus::NotFound,
                    job.expected_hex.clone().unwrap_or_default(),
                ),
                (Some(w), None) => (JobStatus::Ok, to_hex(w)),
                (Some(w), Some(expected)) => {
                    let hex = to_hex(w);
                    if &hex == expected {
                        (JobStatus::Ok, hex)
                    } else {
                        (JobStatus::Mismatch, hex)
                    }
                }
            };
            (outcome.0, outcome.1, Some(rec))
        }
    };
    RecognizeOutcome {
        report: JobReport {
            job_id: job.job_id.clone(),
            watermark_hex,
            seed: job_session.key().seed,
            status,
            attempts,
            wall_ms: started.elapsed().as_millis() as u64,
        },
        recognition,
    }
}

/// Recognizes every copy on the pool, in job order. Equivalent to
/// [`recognize_batch_with`] with default options and no callback.
pub fn recognize_batch(
    jobs: &[RecognizeJob],
    session: &Recognizer,
    pool: &WorkerPool,
) -> Vec<RecognizeOutcome> {
    recognize_batch_with(jobs, session, pool, &BatchOptions::default(), |_| {})
}

/// Recognizes every copy with retries, deadlines, and fault injection
/// per `options`, streaming each settled outcome to `on_outcome` (on
/// the calling thread, in completion order) as well as returning all
/// outcomes in job order.
///
/// Each copy is traced and recognized under its own key (the batch
/// key's secret input plus the copy's seed). Typed recognition errors —
/// e.g. a copy that no longer traces after a destructive attack — are
/// permanent and reported as [`JobStatus::Failed`]; panics and injected
/// transient faults are retried up to the policy's budget; a job
/// overrunning the deadline is reported as [`JobStatus::TimedOut`].
pub fn recognize_batch_with(
    jobs: &[RecognizeJob],
    session: &Recognizer,
    pool: &WorkerPool,
    options: &BatchOptions,
    mut on_outcome: impl FnMut(&RecognizeOutcome),
) -> Vec<RecognizeOutcome> {
    let base = session.clone();
    let policy = options.retry.clone();
    let faults = options.faults.clone();
    let telemetry = pool.telemetry().clone();
    let run_options = RunOptions {
        deadline: options.deadline,
    };
    let results = pool.run_all_with(
        jobs.to_vec(),
        move |index, job: RecognizeJob| {
            recognize_one_faulted(&base, &job, &policy, &telemetry, &faults, index)
        },
        &run_options,
        |index, result| match result {
            Ok(outcome) => on_outcome(outcome),
            Err(failure) => on_outcome(&failed_recognize_outcome(&jobs[index], failure)),
        },
    );

    results
        .into_iter()
        .zip(jobs)
        .map(|(result, job)| {
            result.unwrap_or_else(|failure| failed_recognize_outcome(job, &failure))
        })
        .collect()
}

/// Synthesizes the outcome of a recognize job that never produced one
/// (panic past the retry layer, or deadline overrun). Deterministic for
/// the resume byte-identity guarantee.
fn failed_recognize_outcome(job: &RecognizeJob, failure: &JobFailure) -> RecognizeOutcome {
    RecognizeOutcome {
        report: JobReport {
            job_id: job.job_id.clone(),
            watermark_hex: job.expected_hex.clone().unwrap_or_default(),
            seed: job.seed,
            status: job_failure_status(failure),
            attempts: 0,
            wall_ms: 0,
        },
        recognition: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_core::java::JavaConfig;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0xF1EE7, vec![3, 1, 4])
    }

    fn config() -> JavaConfig {
        JavaConfig::for_watermark_bits(64).with_pieces(12)
    }

    fn embedder() -> Embedder {
        Embedder::builder(key(), config()).build().unwrap()
    }

    fn recognizer() -> Recognizer {
        Recognizer::builder(key(), config()).build().unwrap()
    }

    #[test]
    fn batch_embeds_distinct_recognizable_copies() {
        let pool = WorkerPool::new(4);
        let cache = TraceCache::new();
        let jobs: Vec<EmbedJobSpec> = (0..6)
            .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
            .collect();
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
        assert!(outcomes.iter().all(|o| o.report.attempts == 1));
        assert_eq!(cache.stats().misses, 1, "one trace for the whole batch");

        // Each copy carries its own watermark and program bytes.
        let mut hexes: Vec<&str> =
            outcomes.iter().map(|o| o.report.watermark_hex.as_str()).collect();
        hexes.sort_unstable();
        hexes.dedup();
        assert_eq!(hexes.len(), 6, "all watermarks distinct");

        let rec_jobs: Vec<RecognizeJob> = outcomes
            .iter()
            .map(|o| RecognizeJob::try_from(o).unwrap())
            .collect();
        let recognized = recognize_batch(&rec_jobs, &recognizer(), &pool);
        assert!(recognized.iter().all(|o| o.report.status.is_ok()));
        assert!(recognized
            .iter()
            .zip(&rec_jobs)
            .all(|(o, j)| Some(&o.report.watermark_hex) == j.expected_hex.as_ref()));
    }

    #[test]
    fn one_bad_job_does_not_poison_the_batch() {
        let pool = WorkerPool::new(3);
        let cache = TraceCache::new();
        let mut jobs: Vec<EmbedJobSpec> = (0..5)
            .map(|i| EmbedJobSpec::new(format!("copy-{i}")))
            .collect();
        // Unparseable watermark hex: this job fails, the others succeed.
        jobs[2].watermark_hex = Some("not-hex!".to_string());
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            if i == 2 {
                assert!(matches!(o.report.status, JobStatus::Failed(_)), "{:?}", o.report);
                assert!(o.marked.is_none());
            } else {
                assert!(o.report.status.is_ok(), "{:?}", o.report);
                assert!(o.marked.is_some());
            }
        }
    }

    #[test]
    fn failed_embed_outcome_does_not_convert_to_recognize_job() {
        let failed = EmbedOutcome {
            report: JobReport {
                job_id: "broken".to_string(),
                watermark_hex: String::new(),
                seed: 7,
                status: JobStatus::Failed("bad hex".to_string()),
                attempts: 1,
                wall_ms: 0,
            },
            marked: None,
        };
        let err = RecognizeJob::try_from(&failed).unwrap_err();
        assert_eq!(err.job_id, "broken");
        assert!(err.to_string().contains("broken"), "{err}");
        assert!(err.to_string().contains("bad hex"), "{err}");
    }

    #[test]
    fn swapped_copies_report_mismatch() {
        let pool = WorkerPool::new(2);
        let cache = TraceCache::new();
        let jobs: Vec<EmbedJobSpec> =
            vec![EmbedJobSpec::new("a"), EmbedJobSpec::new("b")];
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        // Claim copy `b` is copy `a`: recognition under `a`'s seed on
        // `b`'s program must not report success.
        let swapped = vec![RecognizeJob {
            job_id: "a".to_string(),
            program: outcomes[1].marked.clone().unwrap(),
            expected_hex: Some(outcomes[0].report.watermark_hex.clone()),
            seed: outcomes[0].report.seed,
        }];
        let recognized = recognize_batch(&swapped, &recognizer(), &pool);
        assert!(
            !recognized[0].report.status.is_ok(),
            "swapped copy must not verify: {:?}",
            recognized[0].report
        );
    }

    #[test]
    fn outcomes_stream_in_completion_order_and_return_in_manifest_order() {
        use crate::retry::RetryPolicy;

        let pool = WorkerPool::new(2);
        let cache = TraceCache::new();
        let jobs: Vec<EmbedJobSpec> = (0..4)
            .map(|i| EmbedJobSpec::new(format!("copy-{i}")))
            .collect();
        let options = BatchOptions {
            retry: RetryPolicy::none(),
            deadline: None,
            faults: FaultPlan::none(),
        };
        let mut streamed = Vec::new();
        let outcomes = embed_batch_with(
            &host_program(),
            &embedder(),
            &jobs,
            &pool,
            &cache,
            &options,
            |o| streamed.push(o.report.job_id.clone()),
        )
        .unwrap();
        assert_eq!(streamed.len(), 4, "every outcome streamed exactly once");
        let ordered: Vec<String> = outcomes.iter().map(|o| o.report.job_id.clone()).collect();
        assert_eq!(
            ordered,
            jobs.iter().map(|j| j.job_id.clone()).collect::<Vec<_>>(),
            "returned outcomes follow manifest order"
        );
        let mut sorted = streamed.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ordered.to_vec());
    }
}
