//! The batch engine: embed or recognize a whole manifest of copies on
//! the worker pool.
//!
//! **Embedding** a batch traces the host program *once* (through the
//! [`crate::cache::TraceCache`]) and shares the immutable trace across
//! all N jobs via `Arc`; each job then runs
//! [`Embedder::embed_with_trace`] under a per-copy session derived with
//! [`Embedder::with_key`] (same config and telemetry sink, per-copy
//! key). **Recognition** of a batch parallelizes across copies: each
//! copy is re-traced and recognized independently (the per-copy work is
//! already one job; sharded recognition — [`crate::shard`] — is for
//! splitting a *single* large copy instead).
//!
//! Per-job failures (bad manifest hex, embedding errors, panics) are
//! captured in the job's [`JobReport`] and never abort the rest of the
//! batch.

use std::sync::Arc;
use std::time::Instant;

use pathmark_core::java::{Embedder, Recognition, Recognizer};
use pathmark_core::key::WatermarkKey;
use pathmark_core::WatermarkError;
use stackvm::trace::TraceConfig;
use stackvm::Program;

use crate::cache::TraceCache;
use crate::manifest::{to_hex, EmbedJobSpec, JobReport, JobStatus};
use crate::pool::WorkerPool;

/// The result of one embed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmbedOutcome {
    /// The job's report line.
    pub report: JobReport,
    /// The marked copy, when the job succeeded.
    pub marked: Option<Program>,
}

/// One copy to recognize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizeJob {
    /// Identifies the copy in the report.
    pub job_id: String,
    /// The (possibly attacked) copy.
    pub program: Program,
    /// The watermark the copy is supposed to carry, if known: recovering
    /// a different value is reported as [`JobStatus::Mismatch`].
    pub expected_hex: Option<String>,
    /// The copy's numeric secret (from the embed report).
    pub seed: u64,
}

/// The result of one recognize job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecognizeOutcome {
    /// The job's report line. `watermark_hex` holds the *recovered*
    /// value when recognition pinned one down, else the expected value.
    pub report: JobReport,
    /// Full recognition detail, when the copy traced successfully.
    pub recognition: Option<Recognition>,
}

impl From<&EmbedOutcome> for RecognizeJob {
    /// The round-trip conversion: verify that a freshly embedded copy
    /// carries the watermark its report claims.
    ///
    /// # Panics
    ///
    /// When the outcome has no marked program (the embed job failed) —
    /// filter on [`EmbedOutcome::marked`] first.
    fn from(outcome: &EmbedOutcome) -> RecognizeJob {
        RecognizeJob {
            job_id: outcome.report.job_id.clone(),
            program: outcome
                .marked
                .clone()
                .expect("embed outcome has a marked program"),
            expected_hex: Some(outcome.report.watermark_hex.clone()),
            seed: outcome.report.seed,
        }
    }
}

/// Embeds every manifest job into `program` on the pool, tracing the
/// host at most once via `cache`.
///
/// Per-job failures (unparseable `watermark_hex`, embedding errors,
/// panics) become [`JobStatus::Failed`] reports; the other jobs are
/// unaffected. Outcomes are returned in manifest order.
///
/// # Errors
///
/// [`WatermarkError::TraceFailed`] if the *host* program cannot be
/// traced on the key's secret input — then no job can run at all.
pub fn embed_batch(
    program: &Program,
    session: &Embedder,
    jobs: &[EmbedJobSpec],
    pool: &WorkerPool,
    cache: &TraceCache,
) -> Result<Vec<EmbedOutcome>, WatermarkError> {
    // The one traced run every job shares. The trace depends on the
    // secret input, which all per-copy keys inherit from the batch key.
    let trace = cache.get_or_trace(
        program,
        session.key(),
        session.config(),
        TraceConfig::full(),
    )?;

    let host = Arc::new(program.clone());
    let base = session.clone();
    let results = pool.run_all(jobs.to_vec(), move |_, spec: EmbedJobSpec| {
        let started = Instant::now();
        let job_key = spec.effective_key(base.key());
        let job_session = base.with_key(job_key);
        let (status, watermark_hex, marked) =
            match spec.watermark(base.key(), base.config()) {
                Err(why) => (JobStatus::Failed(why), String::new(), None),
                Ok(watermark) => {
                    let hex = to_hex(watermark.value());
                    match job_session.embed_with_trace(&host, &watermark, &trace) {
                        Ok(m) => (JobStatus::Ok, hex, Some(m.program)),
                        Err(e) => (JobStatus::Failed(e.to_string()), hex, None),
                    }
                }
            };
        EmbedOutcome {
            report: JobReport {
                job_id: spec.job_id,
                watermark_hex,
                seed: job_session.key().seed,
                status,
                wall_ms: started.elapsed().as_millis() as u64,
            },
            marked,
        }
    });

    Ok(results
        .into_iter()
        .zip(jobs)
        .map(|(result, spec)| {
            result.unwrap_or_else(|panic| EmbedOutcome {
                report: JobReport {
                    job_id: spec.job_id.clone(),
                    watermark_hex: spec.watermark_hex.clone().unwrap_or_default(),
                    seed: spec.effective_seed(session.key().seed),
                    status: JobStatus::Failed(panic.to_string()),
                    wall_ms: 0,
                },
                marked: None,
            })
        })
        .collect())
}

/// Recognizes every copy on the pool, in job order.
///
/// Each copy is traced and recognized under its own key (the batch
/// key's secret input plus the copy's seed). A copy that fails to trace
/// — e.g. after a destructive attack — or panics is reported as
/// [`JobStatus::Failed`] without affecting the rest.
pub fn recognize_batch(
    jobs: &[RecognizeJob],
    session: &Recognizer,
    pool: &WorkerPool,
) -> Vec<RecognizeOutcome> {
    let base = session.clone();
    let results = pool.run_all(jobs.to_vec(), move |_, job: RecognizeJob| {
        let started = Instant::now();
        let job_key = WatermarkKey::new(job.seed, base.key().input.clone());
        let job_session = base.with_key(job_key);
        let (status, watermark_hex, recognition) =
            match job_session.recognize(&job.program) {
                Err(e) => (
                    JobStatus::Failed(e.to_string()),
                    job.expected_hex.clone().unwrap_or_default(),
                    None,
                ),
                Ok(rec) => {
                    let outcome = match (&rec.watermark, &job.expected_hex) {
                        (None, _) => (
                            JobStatus::NotFound,
                            job.expected_hex.clone().unwrap_or_default(),
                        ),
                        (Some(w), None) => (JobStatus::Ok, to_hex(w)),
                        (Some(w), Some(expected)) => {
                            let hex = to_hex(w);
                            if &hex == expected {
                                (JobStatus::Ok, hex)
                            } else {
                                (JobStatus::Mismatch, hex)
                            }
                        }
                    };
                    (outcome.0, outcome.1, Some(rec))
                }
            };
        RecognizeOutcome {
            report: JobReport {
                job_id: job.job_id,
                watermark_hex,
                seed: job_session.key().seed,
                status,
                wall_ms: started.elapsed().as_millis() as u64,
            },
            recognition,
        }
    });

    results
        .into_iter()
        .zip(jobs)
        .map(|(result, job)| {
            result.unwrap_or_else(|panic| RecognizeOutcome {
                report: JobReport {
                    job_id: job.job_id.clone(),
                    watermark_hex: job.expected_hex.clone().unwrap_or_default(),
                    seed: job.seed,
                    status: JobStatus::Failed(panic.to_string()),
                    wall_ms: 0,
                },
                recognition: None,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathmark_core::java::JavaConfig;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;

    fn host_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 2);
        let head = f.new_label();
        let out = f.new_label();
        f.push(0).store(0);
        f.bind(head);
        f.load(0).push(8).if_cmp(Cond::Ge, out);
        f.load(0).load(1).add().store(1);
        f.iinc(0, 1).goto(head);
        f.bind(out);
        f.load(1).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    fn key() -> WatermarkKey {
        WatermarkKey::new(0xF1EE7, vec![3, 1, 4])
    }

    fn config() -> JavaConfig {
        JavaConfig::for_watermark_bits(64).with_pieces(12)
    }

    fn embedder() -> Embedder {
        Embedder::builder(key(), config()).build().unwrap()
    }

    fn recognizer() -> Recognizer {
        Recognizer::builder(key(), config()).build().unwrap()
    }

    #[test]
    fn batch_embeds_distinct_recognizable_copies() {
        let pool = WorkerPool::new(4);
        let cache = TraceCache::new();
        let jobs: Vec<EmbedJobSpec> = (0..6)
            .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
            .collect();
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        assert_eq!(outcomes.len(), 6);
        assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
        assert_eq!(cache.stats().misses, 1, "one trace for the whole batch");

        // Each copy carries its own watermark and program bytes.
        let mut hexes: Vec<&str> =
            outcomes.iter().map(|o| o.report.watermark_hex.as_str()).collect();
        hexes.sort_unstable();
        hexes.dedup();
        assert_eq!(hexes.len(), 6, "all watermarks distinct");

        let rec_jobs: Vec<RecognizeJob> = outcomes.iter().map(RecognizeJob::from).collect();
        let recognized = recognize_batch(&rec_jobs, &recognizer(), &pool);
        assert!(recognized.iter().all(|o| o.report.status.is_ok()));
        assert!(recognized
            .iter()
            .zip(&rec_jobs)
            .all(|(o, j)| Some(&o.report.watermark_hex) == j.expected_hex.as_ref()));
    }

    #[test]
    fn one_bad_job_does_not_poison_the_batch() {
        let pool = WorkerPool::new(3);
        let cache = TraceCache::new();
        let mut jobs: Vec<EmbedJobSpec> = (0..5)
            .map(|i| EmbedJobSpec::new(format!("copy-{i}")))
            .collect();
        // Unparseable watermark hex: this job fails, the others succeed.
        jobs[2].watermark_hex = Some("not-hex!".to_string());
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        for (i, o) in outcomes.iter().enumerate() {
            if i == 2 {
                assert!(matches!(o.report.status, JobStatus::Failed(_)), "{:?}", o.report);
                assert!(o.marked.is_none());
            } else {
                assert!(o.report.status.is_ok(), "{:?}", o.report);
                assert!(o.marked.is_some());
            }
        }
    }

    #[test]
    fn swapped_copies_report_mismatch() {
        let pool = WorkerPool::new(2);
        let cache = TraceCache::new();
        let jobs: Vec<EmbedJobSpec> =
            vec![EmbedJobSpec::new("a"), EmbedJobSpec::new("b")];
        let outcomes = embed_batch(&host_program(), &embedder(), &jobs, &pool, &cache).unwrap();
        // Claim copy `b` is copy `a`: recognition under `a`'s seed on
        // `b`'s program must not report success.
        let swapped = vec![RecognizeJob {
            job_id: "a".to_string(),
            program: outcomes[1].marked.clone().unwrap(),
            expected_hex: Some(outcomes[0].report.watermark_hex.clone()),
            seed: outcomes[0].report.seed,
        }];
        let recognized = recognize_batch(&swapped, &recognizer(), &pool);
        assert!(
            !recognized[0].report.status.is_ok(),
            "swapped copy must not verify: {:?}",
            recognized[0].report
        );
    }
}
