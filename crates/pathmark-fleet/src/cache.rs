//! The trace cache: one traced run per (program, secret input), shared
//! across every embed job in a batch.
//!
//! Tracing is the only embedding step that *executes* the program; the
//! rest of `embed` is pure computation over the trace. A batch that
//! fingerprints N copies of one program under one key therefore needs
//! exactly one traced run — this cache provides it, handing each job an
//! [`Arc<Trace>`] so the (large, immutable) trace is never cloned.
//!
//! The cache key is what the trace actually depends on: the program
//! bytes, the key's secret *input* sequence (the numeric secret steers
//! primes and ciphers, not execution), the tracing budget, and the
//! [`TraceConfig`] flags. Program identity is the *full codec byte
//! string*, not just its 64-bit FNV-1a digest: an early version keyed
//! on the bare digest, so two distinct programs whose bytes collide
//! under FNV-1a would silently share one trace — and the second program
//! would be watermarked against the first one's execution. The digest
//! is kept only to make hashing cheap; equality always compares bytes.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pathmark_core::java::{trace_program, JavaConfig};
use pathmark_core::key::WatermarkKey;
use pathmark_core::WatermarkError;
use pathmark_telemetry::{Counter, Stage, Telemetry};
use stackvm::trace::{Trace, TraceConfig};
use stackvm::Program;

#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheKey {
    /// FNV-1a digest of `program_bytes` — a cheap pre-hash, never
    /// trusted for identity.
    program_fnv: u64,
    /// The program's full codec bytes. `Eq` compares them, so two
    /// programs colliding under FNV-1a occupy two distinct entries
    /// (same bucket, different keys) instead of sharing one trace.
    program_bytes: Arc<Vec<u8>>,
    input: Vec<i64>,
    budget: u64,
    blocks: bool,
    branches: bool,
    snapshots: bool,
    snapshot_limit: u32,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // `program_bytes` is deliberately not hashed: `program_fnv` is
        // its digest, and re-hashing kilobytes of codec bytes on every
        // lookup would defeat the point of pre-hashing. The `Eq` byte
        // comparison (which `HashMap` runs on every bucket candidate)
        // is what keeps colliding programs apart.
        self.program_fnv.hash(state);
        self.input.hash(state);
        self.budget.hash(state);
        self.blocks.hash(state);
        self.branches.hash(state);
        self.snapshots.hash(state);
        self.snapshot_limit.hash(state);
    }
}

/// Hit/miss counters of a [`TraceCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to trace.
    pub misses: u64,
}

/// A concurrent map from (program, input, config) to a shared trace.
#[derive(Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<CacheKey, Arc<Trace>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    telemetry: Telemetry,
}

impl TraceCache {
    /// An empty cache with telemetry disabled.
    pub fn new() -> TraceCache {
        TraceCache::default()
    }

    /// An empty cache reporting [`Counter::CacheHit`] /
    /// [`Counter::CacheMiss`] and a [`Stage::Trace`] span per cold
    /// trace into `telemetry`.
    pub fn with_telemetry(telemetry: Telemetry) -> TraceCache {
        TraceCache {
            telemetry,
            ..TraceCache::default()
        }
    }

    /// Returns the trace of `program` on `key`'s secret input, tracing
    /// at most once per distinct (program, input, budget, flags)
    /// combination. Concurrent callers racing on a cold entry may trace
    /// redundantly; the first insertion wins and all callers share it.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TraceFailed`] if the program faults or exceeds
    /// the budget.
    pub fn get_or_trace(
        &self,
        program: &Program,
        key: &WatermarkKey,
        config: &JavaConfig,
        what: TraceConfig,
    ) -> Result<Arc<Trace>, WatermarkError> {
        let program_bytes = stackvm::codec::encode_program(program);
        let cache_key = CacheKey {
            program_fnv: fnv1a(&program_bytes),
            program_bytes: Arc::new(program_bytes),
            input: key.input.clone(),
            budget: config.trace_budget,
            blocks: what.blocks,
            branches: what.branches,
            snapshots: what.snapshots,
            snapshot_limit: what.snapshot_limit,
        };
        if let Some(trace) = self
            .entries
            .lock()
            .expect("cache lock")
            .get(&cache_key)
            .cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.telemetry.count(Counter::CacheHit, 1);
            return Ok(trace);
        }
        // Trace outside the lock so a long run does not stall the pool.
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.telemetry.count(Counter::CacheMiss, 1);
        let trace = Arc::new(
            self.telemetry
                .time(Stage::Trace, || trace_program(program, key, config, what))?,
        );
        let mut entries = self.entries.lock().expect("cache lock");
        Ok(Arc::clone(entries.entry(cache_key).or_insert(trace)))
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of cached traces.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over a byte string: deterministic (unlike `DefaultHasher`)
/// and dependency-free. Also used by the manifest layer to derive
/// per-job seeds from job ids.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};

    fn tiny_program(value: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = FunctionBuilder::new("main", 0, 1);
        f.push(value).print().ret_void();
        let main = pb.add_function(f.finish().unwrap());
        pb.finish(main).unwrap()
    }

    #[test]
    fn second_lookup_hits() {
        let cache = TraceCache::new();
        let program = tiny_program(1);
        let key = WatermarkKey::new(7, vec![]);
        let config = JavaConfig::for_watermark_bits(64);
        let a = cache
            .get_or_trace(&program, &key, &config, TraceConfig::full())
            .unwrap();
        let b = cache
            .get_or_trace(&program, &key, &config, TraceConfig::full())
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b), "same shared trace");
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn telemetry_counts_hits_misses_and_trace_spans() {
        use pathmark_telemetry::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let cache = TraceCache::with_telemetry(Telemetry::new(sink.clone()));
        let program = tiny_program(3);
        let key = WatermarkKey::new(7, vec![]);
        let config = JavaConfig::for_watermark_bits(64);
        for _ in 0..3 {
            cache
                .get_or_trace(&program, &key, &config, TraceConfig::full())
                .unwrap();
        }
        assert_eq!(sink.counter(Counter::CacheMiss), 1);
        assert_eq!(sink.counter(Counter::CacheHit), 2);
        assert_eq!(sink.stage(Stage::Trace).count, 1, "one cold trace span");
    }

    #[test]
    fn numeric_secret_does_not_split_the_cache() {
        // Two keys with the same input but different numeric secrets
        // execute identically, so they share one trace.
        let cache = TraceCache::new();
        let program = tiny_program(2);
        let config = JavaConfig::for_watermark_bits(64);
        let a = cache
            .get_or_trace(
                &program,
                &WatermarkKey::new(1, vec![5]),
                &config,
                TraceConfig::full(),
            )
            .unwrap();
        let b = cache
            .get_or_trace(
                &program,
                &WatermarkKey::new(2, vec![5]),
                &config,
                TraceConfig::full(),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn different_programs_and_inputs_miss() {
        let cache = TraceCache::new();
        let config = JavaConfig::for_watermark_bits(64);
        let key = WatermarkKey::new(1, vec![]);
        cache
            .get_or_trace(&tiny_program(1), &key, &config, TraceConfig::full())
            .unwrap();
        cache
            .get_or_trace(&tiny_program(2), &key, &config, TraceConfig::full())
            .unwrap();
        cache
            .get_or_trace(
                &tiny_program(1),
                &WatermarkKey::new(1, vec![9]),
                &config,
                TraceConfig::branches_only(),
            )
            .unwrap();
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 3 });
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn fnv_collision_keeps_programs_in_distinct_entries() {
        // Crafting two byte strings that genuinely collide under 64-bit
        // FNV-1a is infeasible, so this regression test exercises the
        // map the way a collision would: two keys with identical
        // `program_fnv` (same Hash) but different bytes (different Eq).
        // Under the old bare-digest key these were ONE entry, and the
        // second program would have been handed the first one's trace.
        let base = CacheKey {
            program_fnv: 0xDEAD_BEEF_CAFE_F00D,
            program_bytes: Arc::new(vec![1, 2, 3]),
            input: vec![],
            budget: 1000,
            blocks: true,
            branches: true,
            snapshots: false,
            snapshot_limit: 0,
        };
        let colliding = CacheKey {
            program_bytes: Arc::new(vec![4, 5, 6]),
            ..base.clone()
        };
        // Same hash …
        let hash_of = |key: &CacheKey| {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(hash_of(&base), hash_of(&colliding), "digests collide");
        // … but distinct identities, hence distinct map entries.
        assert_ne!(base, colliding);
        let mut map: HashMap<CacheKey, u32> = HashMap::new();
        map.insert(base.clone(), 1);
        map.insert(colliding.clone(), 2);
        assert_eq!(map.len(), 2, "colliding programs do not share an entry");
        assert_eq!(map[&base], 1);
        assert_eq!(map[&colliding], 2);
    }
}
