//! Bounded retries with exponential backoff, and the failure taxonomy
//! that decides *which* failures are worth retrying.
//!
//! The recognizer is run repeatedly over large populations of possibly
//! broken copies (see the tamper-proofing evaluations of arXiv:1001.1974
//! and WaterRPG, arXiv:1403.6658), so partial failure is the common
//! case. The taxonomy is deliberately conservative:
//!
//! * **Permanent** — every typed [`WatermarkError`] and every manifest
//!   spec error. The pipeline is deterministic: the same program, key,
//!   and config produce the same typed failure on every attempt, so
//!   re-running wastes the worker's time.
//! * **Transient** — panics (the one failure mode with an environmental
//!   component: resource exhaustion, a bug tickled by thread timing) and
//!   faults injected as transient by [`crate::faults::FaultPlan`].
//!
//! [`run_with_retry`] drives the loop: attempt, classify, back off
//! (recorded as [`Stage::Backoff`], counted as [`Counter::Retry`]),
//! re-attempt, up to [`RetryPolicy::max_attempts`] total attempts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use pathmark_core::WatermarkError;
use pathmark_telemetry::{Counter, Stage, Telemetry};

use crate::pool::JobPanic;

/// Whether a failed attempt is worth re-running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// Might succeed on a re-run (panics, injected transient faults).
    Transient,
    /// Deterministic: every re-run reproduces it (typed errors).
    Permanent,
}

/// One failed attempt of a batch job.
#[derive(Debug, Clone)]
pub enum AttemptFailure {
    /// A typed or injected error, pre-classified at creation (where the
    /// typed error was still in hand).
    Error {
        /// Human-readable description, recorded in the job report.
        message: String,
        /// Transient vs. permanent, decided by [`classify`] (or by the
        /// fault plan, for injected errors).
        class: FailureClass,
    },
    /// The attempt panicked. Always transient.
    Panic(JobPanic),
}

impl AttemptFailure {
    /// Builds a (permanent) failure from a typed pipeline error.
    pub fn from_watermark_error(error: &WatermarkError) -> AttemptFailure {
        AttemptFailure::Error {
            message: error.to_string(),
            class: classify(error),
        }
    }

    /// Builds a permanent failure from a manifest spec error.
    pub fn from_spec_error(message: String) -> AttemptFailure {
        AttemptFailure::Error {
            message,
            class: FailureClass::Permanent,
        }
    }

    /// The failure's class in the retry taxonomy.
    pub fn class(&self) -> FailureClass {
        match self {
            AttemptFailure::Error { class, .. } => *class,
            AttemptFailure::Panic(_) => FailureClass::Transient,
        }
    }

    /// The message recorded in the job report.
    pub fn message(&self) -> String {
        match self {
            AttemptFailure::Error { message, .. } => message.clone(),
            AttemptFailure::Panic(panic) => panic.to_string(),
        }
    }
}

/// Classifies a typed pipeline error. Every current variant is
/// deterministic in (program, key, config), hence permanent; the
/// function exists as the single seam to widen if a future error
/// variant gains an environmental cause.
pub fn classify(_error: &WatermarkError) -> FailureClass {
    FailureClass::Permanent
}

/// Bounded retries with exponential backoff.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per job, including the first (at least 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per further attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: one attempt, report whatever it produced.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Up to `retries` re-runs after the first attempt, starting at a
    /// 10 ms backoff and doubling up to 1 s.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(1),
        }
    }

    /// Overrides the backoff schedule (tests use microsecond backoffs).
    pub fn backoff(mut self, base: Duration, max: Duration) -> RetryPolicy {
        self.base_backoff = base;
        self.max_backoff = max;
        self
    }

    /// The sleep before attempt `attempt` (2-based: the first attempt
    /// never sleeps): `base · 2^(attempt-2)`, capped at `max_backoff`.
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt <= 1 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        // 31 doublings already exceeds any sane max_backoff; clamping
        // keeps the shift in range for absurd attempt numbers.
        let doublings = attempt.saturating_sub(2).min(31);
        self.base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff)
    }

    /// Whether a failure on attempt `attempt` (1-based) warrants another
    /// run: budget left and the failure is transient.
    pub fn should_retry(&self, failure: &AttemptFailure, attempt: u32) -> bool {
        attempt < self.max_attempts && failure.class() == FailureClass::Transient
    }
}

/// Runs `attempt_fn` under `policy`, catching panics per attempt, and
/// returns the final result plus the number of attempts made.
///
/// Each re-run is preceded by the policy's exponential backoff (a
/// [`Stage::Backoff`] span) and counted as one [`Counter::Retry`].
pub fn run_with_retry<R>(
    policy: &RetryPolicy,
    telemetry: &Telemetry,
    mut attempt_fn: impl FnMut(u32) -> Result<R, AttemptFailure>,
) -> (Result<R, AttemptFailure>, u32) {
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = catch_unwind(AssertUnwindSafe(|| attempt_fn(attempt)))
            .unwrap_or_else(|payload| {
                Err(AttemptFailure::Panic(JobPanic {
                    message: crate::pool::panic_message(&*payload),
                }))
            });
        match result {
            Ok(value) => return (Ok(value), attempt),
            Err(failure) => {
                if !policy.should_retry(&failure, attempt) {
                    return (Err(failure), attempt);
                }
                telemetry.count(Counter::Retry, 1);
                let pause = policy.backoff_before(attempt + 1);
                if pause.is_zero() {
                    continue;
                }
                telemetry.time(Stage::Backoff, || std::thread::sleep(pause));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast(retries: u32) -> RetryPolicy {
        RetryPolicy::with_retries(retries)
            .backoff(Duration::from_micros(10), Duration::from_micros(100))
    }

    #[test]
    fn backoff_schedule_doubles_and_caps() {
        let policy = RetryPolicy::with_retries(10)
            .backoff(Duration::from_millis(10), Duration::from_millis(35));
        assert_eq!(policy.backoff_before(1), Duration::ZERO);
        assert_eq!(policy.backoff_before(2), Duration::from_millis(10));
        assert_eq!(policy.backoff_before(3), Duration::from_millis(20));
        assert_eq!(policy.backoff_before(4), Duration::from_millis(35), "capped");
        assert_eq!(policy.backoff_before(60), Duration::from_millis(35));
        assert_eq!(RetryPolicy::none().backoff_before(5), Duration::ZERO);
    }

    #[test]
    fn transient_failure_recovers_within_budget() {
        let telemetry = Telemetry::null();
        let (result, attempts) = run_with_retry(&fast(3), &telemetry, |attempt| {
            if attempt < 3 {
                Err(AttemptFailure::Error {
                    message: "flaky".into(),
                    class: FailureClass::Transient,
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result.unwrap(), 3);
        assert_eq!(attempts, 3);
    }

    #[test]
    fn permanent_failure_is_not_retried() {
        let telemetry = Telemetry::null();
        let (result, attempts) = run_with_retry(&fast(5), &telemetry, |_| {
            Err::<(), _>(AttemptFailure::from_spec_error("bad spec".into()))
        });
        assert_eq!(result.unwrap_err().message(), "bad spec");
        assert_eq!(attempts, 1, "permanent failures fail fast");
    }

    #[test]
    fn persistent_panic_exhausts_the_budget() {
        use pathmark_telemetry::MemorySink;
        use std::sync::Arc;

        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let (result, attempts) =
            run_with_retry(&fast(2), &telemetry, |_| -> Result<(), AttemptFailure> {
                panic!("always broken")
            });
        let failure = result.unwrap_err();
        assert_eq!(failure.class(), FailureClass::Transient);
        assert!(failure.message().contains("always broken"));
        assert_eq!(attempts, 3, "1 attempt + 2 retries");
        assert_eq!(sink.counter(Counter::Retry), 2);
        assert_eq!(sink.stage(Stage::Backoff).count, 2);
    }

    #[test]
    fn typed_errors_classify_permanent() {
        let error = WatermarkError::NoInsertionPoint;
        assert_eq!(classify(&error), FailureClass::Permanent);
        let failure = AttemptFailure::from_watermark_error(&error);
        assert_eq!(failure.class(), FailureClass::Permanent);
        assert!(failure.message().contains("insertion point"));
    }
}
