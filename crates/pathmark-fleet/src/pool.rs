//! A hand-rolled worker pool: `std::thread` workers pulling boxed jobs
//! from a `Mutex`/`Condvar` queue.
//!
//! Two properties the batch engine depends on:
//!
//! * **panic isolation** — every job runs under
//!   [`std::panic::catch_unwind`]; a poisoned job reports a
//!   [`JobPanic`] and the worker moves on to the next job, so one bad
//!   copy never kills the batch;
//! * **graceful shutdown** — dropping the pool flags the queue, wakes
//!   every worker, and joins them; already-queued jobs finish first.
//!
//! A pool built with [`WorkerPool::with_telemetry`] additionally
//! reports, per job, the time spent waiting in the queue
//! ([`Stage::QueueWait`]) and running ([`Stage::JobRun`]), plus a
//! [`Counter::PoolPanic`] increment per escaped panic. The default
//! pool carries a disabled handle and never reads the clock.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use pathmark_telemetry::{Counter, Stage, Telemetry};

/// A job that escaped with a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    telemetry: Telemetry,
}

/// A fixed-size pool of worker threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one) with telemetry
    /// disabled.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_telemetry(workers, Telemetry::null())
    }

    /// Spawns a pool whose jobs report queue-wait and run-time spans
    /// (and panic counts) into `telemetry`.
    pub fn with_telemetry(workers: usize, telemetry: Telemetry) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            telemetry,
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pathmark-fleet-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The pool's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Enqueues one fire-and-forget job. On a telemetry-enabled pool the
    /// job is wrapped to report its queue wait (enqueue → dequeue) and
    /// its run time as separate spans.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let boxed: Job = if self.shared.telemetry.enabled() {
            let telemetry = self.shared.telemetry.clone();
            let enqueued = Instant::now();
            Box::new(move || {
                telemetry.record(Stage::QueueWait, enqueued.elapsed().as_nanos() as u64);
                telemetry.time(Stage::JobRun, job);
            })
        } else {
            Box::new(job)
        };
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.jobs.push_back(boxed);
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Runs `f` over every input on the pool and returns the results in
    /// input order. A job that panics yields `Err(JobPanic)` in its slot
    /// while every other job completes normally.
    pub fn run_all<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, Result<R, JobPanic>)>();
        for (index, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let telemetry = self.shared.telemetry.clone();
            self.execute(move || {
                let result = catch_unwind(AssertUnwindSafe(|| f(index, input)))
                    .map_err(|payload| {
                        // Counted here, not in the worker loop: the
                        // panic never escapes this closure.
                        telemetry.count(Counter::PoolPanic, 1);
                        JobPanic {
                            message: panic_message(&*payload),
                        }
                    });
                // The receiver hanging up just means the caller stopped
                // listening; nothing useful to do with the error.
                let _ = tx.send((index, result));
            });
        }
        drop(tx);
        let mut results: Vec<Option<Result<R, JobPanic>>> = (0..n).map(|_| None).collect();
        for (index, result) in rx.iter().take(n) {
            results[index] = Some(result);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every job reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.ready.wait(queue).expect("queue lock");
            }
        };
        // Belt and braces: `run_all` already catches panics inside the
        // job closure, but a raw `execute` job must not kill the worker
        // either.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.telemetry.count(Counter::PoolPanic, 1);
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_in_input_order() {
        let pool = WorkerPool::new(4);
        let results = pool.run_all((0..100).collect(), |_, v: i32| v * 2);
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let pool = WorkerPool::new(0); // clamped to 1
        assert_eq!(pool.workers(), 1);
        let results = pool.run_all(vec![1, 2, 3], |_, v: i32| v + 1);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = WorkerPool::new(3);
        let results = pool.run_all((0..16).collect(), |_, v: i32| {
            if v == 7 {
                panic!("job {v} is poisoned");
            }
            v
        });
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let err = r.as_ref().unwrap_err();
                assert!(err.message.contains("poisoned"), "{err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i32);
            }
        }
    }

    #[test]
    fn drop_finishes_queued_execute_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn telemetry_reports_queue_run_and_panics() {
        use pathmark_telemetry::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
        let results = pool.run_all((0..10).collect(), |_, v: i32| {
            if v == 3 {
                panic!("poisoned");
            }
            v
        });
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        // Every job (panicking or not) waited in the queue and ran.
        assert_eq!(sink.stage(Stage::QueueWait).count, 10);
        assert_eq!(sink.stage(Stage::JobRun).count, 10);
        assert_eq!(sink.counter(Counter::PoolPanic), 1);

        // Raw execute panics are counted too (by the worker loop).
        pool.execute(|| panic!("raw"));
        drop(pool);
        assert_eq!(sink.counter(Counter::PoolPanic), 2);
    }

    #[test]
    fn pool_survives_panics_in_execute_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            pool.execute(|| panic!("raw poisoned job"));
            let counter2 = Arc::clone(&counter);
            pool.execute(move || {
                counter2.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
