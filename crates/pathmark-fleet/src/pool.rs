//! A hand-rolled worker pool: `std::thread` workers pulling boxed jobs
//! from a `Mutex`/`Condvar` queue.
//!
//! Three properties the batch engine depends on:
//!
//! * **panic isolation** — every job runs under
//!   [`std::panic::catch_unwind`]; a poisoned job reports a
//!   [`JobPanic`] and the worker moves on to the next job, so one bad
//!   copy never kills the batch;
//! * **deadline enforcement** — [`WorkerPool::run_all_with`] takes an
//!   optional per-job deadline; a job that overruns it is reported as
//!   [`JobFailure::TimedOut`], its worker is *abandoned* (detached and
//!   told to exit once the wedged job finally returns), and a fresh
//!   worker is spawned in its place, so one pathological trace cannot
//!   wedge a batch or permanently shrink the pool;
//! * **graceful shutdown** — dropping the pool flags the queue, wakes
//!   every worker, and joins them; already-queued jobs finish first.
//!   Abandoned workers are detached and never joined (by definition
//!   they may be wedged forever).
//!
//! A pool built with [`WorkerPool::with_telemetry`] additionally
//! reports, per job, the time spent waiting in the queue
//! ([`Stage::QueueWait`]) and running ([`Stage::JobRun`]), plus a
//! [`Counter::PoolPanic`] increment per escaped panic, a
//! [`Counter::JobTimeout`] per expired deadline, and a
//! [`Counter::WorkerRespawn`] per replaced worker. The default pool
//! carries a disabled handle and never reads the clock.

use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pathmark_telemetry::{Counter, Stage, Telemetry};

/// A job that escaped with a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// The panic payload, if it was a string (the common case).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job panicked: {}", self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Why a job submitted through [`WorkerPool::run_all_with`] produced no
/// result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// The job panicked; the panic was contained to this job.
    Panic(JobPanic),
    /// The job overran its deadline and was abandoned along with its
    /// worker; a replacement worker took over the rest of the queue.
    TimedOut {
        /// The deadline the job overran.
        deadline: Duration,
    },
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panic(p) => p.fmt(f),
            JobFailure::TimedOut { deadline } => {
                write!(f, "job exceeded its {} ms deadline", deadline.as_millis())
            }
        }
    }
}

impl std::error::Error for JobFailure {}

/// Options for one [`WorkerPool::run_all_with`] call.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Wall-clock budget for one job's run (queue wait excluded). A job
    /// that overruns it is reported as [`JobFailure::TimedOut`] and its
    /// worker replaced. `None` disables deadline supervision entirely.
    pub deadline: Option<Duration>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// Worker-thread bookkeeping: live handles plus the set of workers told
/// to retire because their current job overran its deadline.
struct Roster {
    handles: Vec<(u64, JoinHandle<()>)>,
    abandoned: HashSet<u64>,
}

struct Shared {
    queue: Mutex<Queue>,
    ready: Condvar,
    roster: Mutex<Roster>,
    next_worker_id: AtomicU64,
    telemetry: Telemetry,
}

thread_local! {
    /// The id of the pool worker running on this thread, if any.
    static WORKER_ID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// A fixed-size pool of worker threads.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// The size the pool maintains (a respawn replaces, never grows).
    size: usize,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (at least one) with telemetry
    /// disabled.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_telemetry(workers, Telemetry::null())
    }

    /// Spawns a pool whose jobs report queue-wait and run-time spans
    /// (and panic/timeout/respawn counts) into `telemetry`.
    pub fn with_telemetry(workers: usize, telemetry: Telemetry) -> WorkerPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
            roster: Mutex::new(Roster {
                handles: Vec::new(),
                abandoned: HashSet::new(),
            }),
            next_worker_id: AtomicU64::new(0),
            telemetry,
        });
        let size = workers.max(1);
        for _ in 0..size {
            spawn_worker(&shared);
        }
        WorkerPool { shared, size }
    }

    /// Number of worker threads the pool maintains.
    pub fn workers(&self) -> usize {
        self.size
    }

    /// The pool's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Jobs currently waiting in the queue (excludes jobs already on a
    /// worker). A point-in-time snapshot — by the time the caller acts
    /// on it the depth may have changed — but good enough for the
    /// admission-control check the serve daemon runs before enqueueing.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").jobs.len()
    }

    /// Enqueues one fire-and-forget job. On a telemetry-enabled pool the
    /// job is wrapped to report its queue wait (enqueue → dequeue) and
    /// its run time as separate spans.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        let boxed: Job = if self.shared.telemetry.enabled() {
            let telemetry = self.shared.telemetry.clone();
            let enqueued = Instant::now();
            Box::new(move || {
                telemetry.record(Stage::QueueWait, enqueued.elapsed().as_nanos() as u64);
                telemetry.time(Stage::JobRun, job);
            })
        } else {
            Box::new(job)
        };
        let mut queue = self.shared.queue.lock().expect("queue lock");
        queue.jobs.push_back(boxed);
        drop(queue);
        self.shared.ready.notify_one();
    }

    /// Runs `f` over every input on the pool and returns the results in
    /// input order. A job that panics yields `Err(JobPanic)` in its slot
    /// while every other job completes normally.
    pub fn run_all<T, R, F>(&self, inputs: Vec<T>, f: F) -> Vec<Result<R, JobPanic>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        self.run_all_with(inputs, f, &RunOptions::default(), |_, _| {})
            .into_iter()
            .map(|slot| {
                slot.map_err(|failure| match failure {
                    JobFailure::Panic(p) => p,
                    // No deadline was set, so no job can time out.
                    JobFailure::TimedOut { .. } => unreachable!("timeout without a deadline"),
                })
            })
            .collect()
    }

    /// Runs `f` over every input, enforcing `options.deadline` per job,
    /// and returns the results in input order. `on_done` fires on the
    /// *calling* thread as each job settles (completion order), with the
    /// job's input index — the hook the crash-safe manifest writer hangs
    /// off of.
    ///
    /// A job that overruns the deadline settles as
    /// [`JobFailure::TimedOut`]: its worker is abandoned (detached, told
    /// to retire when the wedged job eventually returns) and a fresh
    /// worker is spawned so pool capacity is preserved. A result arriving
    /// after its job already timed out is discarded.
    pub fn run_all_with<T, R, F>(
        &self,
        inputs: Vec<T>,
        f: F,
        options: &RunOptions,
        mut on_done: impl FnMut(usize, &Result<R, JobFailure>),
    ) -> Vec<Result<R, JobFailure>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, T) -> R + Send + Sync + 'static,
    {
        let n = inputs.len();
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, Result<R, JobPanic>)>();
        // Which jobs are on a worker right now: index → (worker, start).
        // The supervisor scans this to expire overrunning jobs.
        let running: Arc<Mutex<HashMap<usize, (u64, Instant)>>> = Arc::default();
        for (index, input) in inputs.into_iter().enumerate() {
            let f = Arc::clone(&f);
            let tx = tx.clone();
            let running = Arc::clone(&running);
            let telemetry = self.shared.telemetry.clone();
            self.execute(move || {
                let worker = WORKER_ID.get();
                running
                    .lock()
                    .expect("running lock")
                    .insert(index, (worker, Instant::now()));
                let result = catch_unwind(AssertUnwindSafe(|| f(index, input)))
                    .map_err(|payload| {
                        // Counted here, not in the worker loop: the
                        // panic never escapes this closure.
                        telemetry.count(Counter::PoolPanic, 1);
                        JobPanic {
                            message: panic_message(&*payload),
                        }
                    });
                running.lock().expect("running lock").remove(&index);
                // The receiver hanging up just means the caller stopped
                // listening; nothing useful to do with the error.
                let _ = tx.send((index, result));
            });
        }
        drop(tx);

        let mut results: Vec<Option<Result<R, JobFailure>>> = (0..n).map(|_| None).collect();
        let mut done = 0usize;
        while done < n {
            let received = match options.deadline {
                None => rx.recv().ok(),
                Some(deadline) => {
                    // Poll granularity: fine enough to expire promptly,
                    // coarse enough not to spin.
                    let tick = (deadline / 8)
                        .clamp(Duration::from_millis(1), Duration::from_millis(50));
                    match rx.recv_timeout(tick) {
                        Ok(message) => Some(message),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            match received {
                Some((index, result)) => {
                    // A slot already settled by timeout ignores its
                    // worker's late result.
                    if results[index].is_none() {
                        let settled = result.map_err(JobFailure::Panic);
                        on_done(index, &settled);
                        results[index] = Some(settled);
                        done += 1;
                    }
                }
                None => {
                    let deadline = options.deadline.expect("ticking implies a deadline");
                    for (index, worker) in expired_jobs(&running, deadline) {
                        if results[index].is_some() {
                            continue;
                        }
                        self.shared.telemetry.count(Counter::JobTimeout, 1);
                        self.abandon_and_respawn(worker);
                        let settled = Err(JobFailure::TimedOut { deadline });
                        on_done(index, &settled);
                        results[index] = Some(settled);
                        done += 1;
                        running.lock().expect("running lock").remove(&index);
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every job settled"))
            .collect()
    }

    /// Detaches the worker running a timed-out job, flags it to retire
    /// once the wedged job returns, and spawns a replacement so the pool
    /// keeps its configured capacity.
    fn abandon_and_respawn(&self, worker: u64) {
        {
            let mut roster = self.shared.roster.lock().expect("roster lock");
            roster.abandoned.insert(worker);
            // Dropping the JoinHandle detaches the thread: a wedged job
            // must not block shutdown.
            roster.handles.retain(|(id, _)| *id != worker);
        }
        self.shared.telemetry.count(Counter::WorkerRespawn, 1);
        spawn_worker(&self.shared);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.shutdown = true;
        }
        self.shared.ready.notify_all();
        let handles: Vec<(u64, JoinHandle<()>)> = {
            let mut roster = self.shared.roster.lock().expect("roster lock");
            roster.handles.drain(..).collect()
        };
        for (_, handle) in handles {
            let _ = handle.join();
        }
    }
}

fn spawn_worker(shared: &Arc<Shared>) {
    let id = shared.next_worker_id.fetch_add(1, Ordering::Relaxed);
    let worker_shared = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(format!("pathmark-fleet-{id}"))
        .spawn(move || worker_loop(&worker_shared, id))
        .expect("spawn worker thread");
    shared
        .roster
        .lock()
        .expect("roster lock")
        .handles
        .push((id, handle));
}

fn worker_loop(shared: &Arc<Shared>, id: u64) {
    WORKER_ID.set(id);
    // If this thread dies abnormally (a panic that escapes the
    // catch_unwind below, e.g. a panicking panic-payload Drop), the
    // guard respawns a replacement so the pool never silently shrinks.
    // On a normal return it is a no-op.
    let _guard = RespawnGuard { shared, id };
    loop {
        // An abandoned worker retires as soon as its wedged job lets go
        // of the thread; its replacement is already running.
        if shared
            .roster
            .lock()
            .expect("roster lock")
            .abandoned
            .remove(&id)
        {
            return;
        }
        let job = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.ready.wait(queue).expect("queue lock");
            }
        };
        // Belt and braces: `run_all_with` already catches panics inside
        // the job closure, but a raw `execute` job must not kill the
        // worker either.
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.telemetry.count(Counter::PoolPanic, 1);
        }
    }
}

/// Respawns a replacement worker if the worker thread unwinds.
struct RespawnGuard<'a> {
    shared: &'a Arc<Shared>,
    id: u64,
}

impl Drop for RespawnGuard<'_> {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        let shutdown = self.shared.queue.lock().expect("queue lock").shutdown;
        {
            let mut roster = self.shared.roster.lock().expect("roster lock");
            roster.handles.retain(|(id, _)| *id != self.id);
            roster.abandoned.remove(&self.id);
        }
        if !shutdown {
            self.shared.telemetry.count(Counter::WorkerRespawn, 1);
            spawn_worker(self.shared);
        }
    }
}

/// Jobs whose run time exceeds `deadline`: (input index, worker id).
fn expired_jobs(
    running: &Arc<Mutex<HashMap<usize, (u64, Instant)>>>,
    deadline: Duration,
) -> Vec<(usize, u64)> {
    let now = Instant::now();
    running
        .lock()
        .expect("running lock")
        .iter()
        .filter(|(_, (_, started))| now.duration_since(*started) >= deadline)
        .map(|(&index, &(worker, _))| (index, worker))
        .collect()
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_jobs_in_input_order() {
        let pool = WorkerPool::new(4);
        let results = pool.run_all((0..100).collect(), |_, v: i32| v * 2);
        let got: Vec<i32> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..100).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool_still_completes() {
        let pool = WorkerPool::new(0); // clamped to 1
        assert_eq!(pool.workers(), 1);
        let results = pool.run_all(vec![1, 2, 3], |_, v: i32| v + 1);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn panicking_job_is_isolated() {
        let pool = WorkerPool::new(3);
        let results = pool.run_all((0..16).collect(), |_, v: i32| {
            if v == 7 {
                panic!("job {v} is poisoned");
            }
            v
        });
        for (i, r) in results.iter().enumerate() {
            if i == 7 {
                let err = r.as_ref().unwrap_err();
                assert!(err.message.contains("poisoned"), "{err}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as i32);
            }
        }
    }

    #[test]
    fn drop_finishes_queued_execute_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                pool.execute(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins the workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn telemetry_reports_queue_run_and_panics() {
        use pathmark_telemetry::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
        let results = pool.run_all((0..10).collect(), |_, v: i32| {
            if v == 3 {
                panic!("poisoned");
            }
            v
        });
        assert_eq!(results.iter().filter(|r| r.is_err()).count(), 1);
        // Panics are counted inside the job closure before its result
        // message is sent, so the count is visible as soon as `run_all`
        // returns.
        assert_eq!(sink.counter(Counter::PoolPanic), 1);

        // Raw execute panics are counted too (by the worker loop).
        pool.execute(|| panic!("raw"));
        // Span counts settle only once the workers are joined: a worker
        // records its JobRun span *after* the job's result is sent, so
        // asserting right after `run_all` races the last record.
        drop(pool);
        assert_eq!(sink.counter(Counter::PoolPanic), 2);
        // Every job (panicking or not) waited in the queue. The ten
        // `run_all` jobs contain their panic and record a run span; the
        // raw panic unwinds out of its JobRun span before it is recorded.
        assert_eq!(sink.stage(Stage::QueueWait).count, 11);
        assert_eq!(sink.stage(Stage::JobRun).count, 10);
    }

    #[test]
    fn pool_survives_panics_in_execute_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            pool.execute(|| panic!("raw poisoned job"));
            let counter2 = Arc::clone(&counter);
            pool.execute(move || {
                counter2.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timed_out_job_is_reported_and_siblings_complete() {
        use pathmark_telemetry::MemorySink;

        let sink = Arc::new(MemorySink::new());
        let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
        let options = RunOptions {
            deadline: Some(Duration::from_millis(100)),
        };
        let mut settled_order = Vec::new();
        let results = pool.run_all_with(
            (0..6).collect::<Vec<usize>>(),
            |_, v| {
                if v == 2 {
                    std::thread::sleep(Duration::from_secs(5));
                }
                v * 10
            },
            &options,
            |index, _| settled_order.push(index),
        );
        for (i, result) in results.iter().enumerate() {
            if i == 2 {
                assert!(
                    matches!(result, Err(JobFailure::TimedOut { .. })),
                    "{result:?}"
                );
            } else {
                assert_eq!(*result.as_ref().unwrap(), i * 10, "sibling {i} unaffected");
            }
        }
        assert_eq!(settled_order.len(), 6, "every job settled exactly once");
        assert_eq!(sink.counter(Counter::JobTimeout), 1);
        assert_eq!(sink.counter(Counter::WorkerRespawn), 1);

        // The respawned worker keeps the pool at full strength: a second
        // batch with no faults completes normally.
        let results = pool.run_all((0..8).collect(), |_, v: i32| v + 1);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn no_deadline_means_no_timeouts() {
        let pool = WorkerPool::new(2);
        let results = pool.run_all_with(
            (0..4).collect::<Vec<u64>>(),
            |_, v| {
                std::thread::sleep(Duration::from_millis(20));
                v
            },
            &RunOptions::default(),
            |_, _| {},
        );
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn on_done_fires_in_completion_order_on_the_calling_thread() {
        let pool = WorkerPool::new(4);
        let caller = std::thread::current().id();
        let mut seen = Vec::new();
        let results = pool.run_all_with(
            (0..10).collect::<Vec<usize>>(),
            |_, v| v,
            &RunOptions::default(),
            |index, result| {
                assert_eq!(std::thread::current().id(), caller);
                assert!(result.is_ok());
                seen.push(index);
            },
        );
        assert_eq!(results.len(), 10);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
