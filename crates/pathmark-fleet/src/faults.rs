//! Deterministic fault injection, so every recovery path in the fleet
//! (retry, permanent-failure reporting, deadline expiry, resume) is
//! exercised by ordinary tier-1 tests instead of waiting for production
//! to produce the failure.
//!
//! A [`FaultPlan`] maps **job indexes** to faults; the batch engine
//! consults it at the top of every attempt. Faults are a pure function
//! of (job index, attempt number), so an injected run is exactly
//! reproducible — the resume tests depend on that.
//!
//! Production code always passes [`FaultPlan::none`] (what
//! [`Default`] returns, and what every public batch entry point that
//! doesn't take options uses). The injecting constructor,
//! [`FaultPlan::for_tests`], is test-only by convention and by name: it
//! exists so integration tests can build hostile batches, and nothing
//! in the CLI or library constructs one.

use std::time::Duration;

use crate::retry::{AttemptFailure, FailureClass};

/// A fault to inject into one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic on the first `attempts` attempts of the job; later
    /// attempts run clean (models a heal-on-retry crash).
    Panic {
        /// How many leading attempts panic.
        attempts: u32,
    },
    /// Fail with an injected *transient* error on the first `attempts`
    /// attempts; later attempts run clean.
    TransientError {
        /// How many leading attempts fail.
        attempts: u32,
    },
    /// Fail with an injected *permanent* error on every attempt.
    PermanentError,
    /// Sleep this long at the start of every attempt (models a
    /// pathological trace that wedges its worker).
    Delay(Duration),
}

/// A deterministic schedule of faults, keyed by job index.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<(usize, Fault)>,
}

impl FaultPlan {
    /// The empty plan: injects nothing, costs nothing. This is the only
    /// constructor production code uses.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// **Test-only.** An empty plan to chain [`FaultPlan::with_fault`]
    /// onto. Kept out of production paths by convention: the CLI and
    /// the no-options batch entry points never build one.
    pub fn for_tests() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds `fault` for the job at `index`. A job may carry several
    /// faults (e.g. a delay *and* a panic); they apply in insertion
    /// order, delays first being the convention tests use.
    pub fn with_fault(mut self, index: usize, fault: Fault) -> FaultPlan {
        self.rules.push((index, fault));
        self
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Applies the plan to attempt `attempt` (1-based) of job `index`:
    /// sleeps through any delay, then panics or returns the injected
    /// failure if one is scheduled.
    pub(crate) fn apply(&self, index: usize, attempt: u32) -> Result<(), AttemptFailure> {
        for (_, fault) in self.rules.iter().filter(|(i, _)| *i == index) {
            match fault {
                Fault::Delay(pause) => std::thread::sleep(*pause),
                Fault::Panic { attempts } => {
                    if attempt <= *attempts {
                        panic!("injected panic (job {index}, attempt {attempt})");
                    }
                }
                Fault::TransientError { attempts } => {
                    if attempt <= *attempts {
                        return Err(AttemptFailure::Error {
                            message: format!(
                                "injected transient fault (job {index}, attempt {attempt})"
                            ),
                            class: FailureClass::Transient,
                        });
                    }
                }
                Fault::PermanentError => {
                    return Err(AttemptFailure::Error {
                        message: format!("injected permanent fault (job {index})"),
                        class: FailureClass::Permanent,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        for index in 0..8 {
            assert!(plan.apply(index, 1).is_ok());
        }
    }

    #[test]
    fn transient_error_clears_after_its_budget() {
        let plan = FaultPlan::for_tests().with_fault(2, Fault::TransientError { attempts: 2 });
        assert!(plan.apply(1, 1).is_ok(), "other jobs untouched");
        let failure = plan.apply(2, 1).unwrap_err();
        assert_eq!(failure.class(), FailureClass::Transient);
        assert!(plan.apply(2, 2).is_err());
        assert!(plan.apply(2, 3).is_ok(), "third attempt runs clean");
    }

    #[test]
    fn permanent_error_never_clears() {
        let plan = FaultPlan::for_tests().with_fault(0, Fault::PermanentError);
        for attempt in 1..=5 {
            let failure = plan.apply(0, attempt).unwrap_err();
            assert_eq!(failure.class(), FailureClass::Permanent);
        }
    }

    #[test]
    fn injected_panic_panics_on_scheduled_attempts_only() {
        let plan = FaultPlan::for_tests().with_fault(1, Fault::Panic { attempts: 1 });
        let result = std::panic::catch_unwind(|| plan.apply(1, 1));
        assert!(result.is_err(), "attempt 1 panics");
        assert!(plan.apply(1, 2).is_ok(), "attempt 2 runs clean");
    }
}
