//! Figure 5: number of watermark pieces recovered intact versus the
//! probability of successful watermark recovery, for a 768-bit `W` —
//! empirical Monte-Carlo curve against the paper's analytic
//! approximation (equation (1)).

use pathmark_crypto::Prng;
use pathmark_math::bigint::BigUint;
use pathmark_math::crt::combine_statements;
use pathmark_math::enumeration::PairEnumeration;
use pathmark_math::primes::generate_primes;
use pathmark_math::recovery::{
    deletion_probability, empirical_success_probability, success_probability,
};
use std::fmt::Write as _;

/// One point of the figure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Watermark pieces left intact.
    pub intact: usize,
    /// Monte-Carlo success probability.
    pub empirical: f64,
    /// Equation (1).
    pub analytic: f64,
}

/// Computes the curve. 768-bit `W` needs 35 24-bit primes (n = 35
/// nodes, C(35,2) = 595 pieces).
pub fn compute(quick: bool) -> Vec<Point> {
    let n = 35;
    let pairs = n * (n - 1) / 2;
    let trials = if quick { 200 } else { 2000 };
    let step = pairs / if quick { 10 } else { 40 };
    let mut rng = Prng::from_seed(0xF165);
    let mut points = Vec::new();
    for intact in (0..=pairs).step_by(step.max(1)) {
        let q = deletion_probability(n, intact);
        points.push(Point {
            intact,
            empirical: empirical_success_probability(n, intact, trials, || rng.next_u64()),
            analytic: success_probability(n, q),
        });
    }
    points
}

/// End-to-end spot check: split an actual 768-bit watermark, keep a
/// random subset of statements, recombine with the Generalized CRT, and
/// confirm full recovery exactly when all primes stay covered.
pub fn spot_check_full_pipeline(intact: usize) -> (bool, bool) {
    let primes = generate_primes(0x768, 24, 35);
    let enumeration = PairEnumeration::new(&primes).expect("config is valid");
    let mut rng = Prng::from_seed(0x5EED ^ intact as u64);
    let mut bytes = vec![0u8; 96];
    rng.fill_bytes(&mut bytes);
    let mut w = BigUint::from_bytes_le(&bytes);
    while w >= enumeration.watermark_bound() {
        w = &w >> 1;
    }
    let mut pieces = enumeration.split(&w);
    rng.shuffle(&mut pieces);
    pieces.truncate(intact);
    let covered = (0..primes.len())
        .all(|i| pieces.iter().any(|s| s.i == i || s.j == i));
    let recovered = combine_statements(&pieces, &primes)
        .map(|(value, _)| value == w)
        .unwrap_or(false);
    (covered, recovered)
}

/// Renders the figure as a table.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5: pieces intact vs probability of recovering a 768-bit W"
    );
    let _ = writeln!(out, "(35 primes, 595 possible pieces)\n");
    let _ = writeln!(out, "{:>8} {:>11} {:>10}", "intact", "empirical", "eq.(1)");
    for p in compute(quick) {
        let _ = writeln!(
            out,
            "{:>8} {:>11.3} {:>10.3}",
            p.intact, p.empirical, p.analytic
        );
    }
    // Full-pipeline spot checks at a low, a middling, and a high count.
    let _ = writeln!(out, "\nGeneralized-CRT spot checks (cover ⇔ recover):");
    for intact in [20usize, 120, 595] {
        let (covered, recovered) = spot_check_full_pipeline(intact);
        let _ = writeln!(
            out,
            "  {intact:>4} pieces: primes covered = {covered}, W recovered = {recovered}"
        );
        assert!(!covered || recovered, "coverage must guarantee recovery");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_sigmoid_from_zero_to_one() {
        let points = compute(true);
        assert!(points.first().unwrap().empirical < 0.05);
        assert!(points.last().unwrap().empirical > 0.95);
        assert!(points.first().unwrap().analytic < 0.05);
        assert!(points.last().unwrap().analytic > 0.95);
    }

    #[test]
    fn empirical_tracks_analytic() {
        // The paper's figure shows the two curves agreeing closely.
        for p in compute(true) {
            assert!(
                (p.empirical - p.analytic).abs() < 0.12,
                "divergence at {}: {} vs {}",
                p.intact,
                p.empirical,
                p.analytic
            );
        }
    }

    #[test]
    fn full_pipeline_spot_checks_agree() {
        // Coverage guarantees recovery (the converse can fail to fail:
        // a nearly-full modulus may still exceed W by luck).
        for intact in [10usize, 60, 200, 595] {
            let (covered, recovered) = spot_check_full_pipeline(intact);
            assert!(!covered || recovered, "covered but not recovered at {intact}");
        }
        // With very few pieces, coverage of all 35 primes is impossible.
        let (covered, _) = spot_check_full_pipeline(5);
        assert!(!covered);
        // With all pieces, recovery is certain.
        let (covered, recovered) = spot_check_full_pipeline(595);
        assert!(covered && recovered);
    }
}
