//! Ablation studies for the design choices `DESIGN.md` calls out.
//!
//! 1. **Voting prefilter** (Section 3.3): the paper reports the
//!    `W mod p_i` vote "greatly improves the average-case running time
//!    … while having a negligible effect on the probability of
//!    success." We measure recognition latency, surviving candidate
//!    counts, and success with the vote on and off, on an attacked
//!    program.
//! 2. **Tamper-proofing** (Section 4.3): the lock-down is what turns
//!    "the watermark dies" into "the program dies." We measure, across
//!    many random single-no-op attacks, how often the attacked binary
//!    still runs with tamper-proofing on versus off.
//! 3. **Code generators** (Sections 3.2.1 / 3.2.2): loop codegen is
//!    compact; condition codegen spends many more bytes and branches but
//!    reads *existing program variables* (stealth). We quantify the
//!    size/branch-count trade.

use pathmark_attacks::native as nattacks;
use pathmark_core::java::{CodegenPolicy, Embedder, JavaConfig, Recognizer};
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::native::{embed_native, NativeConfig};
use pathmark_crypto::Prng;
use pathmark_workloads::{java as jworkloads, native as nworkloads};
use nativesim::cpu::Machine;
use std::fmt::Write as _;
use std::time::Instant;

use crate::setup;

/// Ablation 1 result: one recognition configuration.
#[derive(Debug, Clone, Copy)]
pub struct VoteAblation {
    /// Whether the vote prefilter ran.
    pub vote: bool,
    /// Candidates surviving to the quadratic graph stage.
    pub graph_vertices: usize,
    /// Wall-clock recognition time in milliseconds.
    pub millis: f64,
    /// Did recognition recover the watermark?
    pub success: bool,
}

/// Runs the voting-prefilter ablation: a marked trace drowned in noise
/// (modeling a long attacked execution whose windows mostly decode to
/// garbage statements — the situation Section 3.3 designed the vote
/// for).
pub fn vote_ablation(quick: bool) -> Vec<VoteAblation> {
    use pathmark_core::bitstring::BitString;
    use stackvm::trace::TraceConfig;

    let input = vec![500];
    let key = setup::key(input.clone());
    let base_config = JavaConfig::for_watermark_bits(256).with_pieces(80);
    let watermark = Watermark::random_for(&base_config, &key);
    let program = jworkloads::jess_like();
    let marked = Embedder::builder(key.clone(), base_config.clone())
        .build()
        .expect("builds")
        .embed(&program, &watermark)
        .expect("embeds")
        .program;
    let trace = stackvm::interp::Vm::new(&marked)
        .with_input(input)
        .with_trace(TraceConfig::branches_only())
        .run()
        .expect("runs")
        .trace;
    // Real trace bits followed by a long random tail.
    let mut bits: Vec<bool> = BitString::from_trace(&trace).to_bools();
    let mut rng = Prng::from_seed(0xAB1);
    let noise = if quick { 400_000 } else { 4_000_000 };
    bits.extend((0..noise).map(|_| rng.chance(0.5)));
    let noisy = BitString::from_bits(bits);

    let mut out = Vec::new();
    for vote in [true, false] {
        let config = JavaConfig {
            vote_prefilter: vote,
            ..base_config.clone()
        };
        let recognizer = Recognizer::builder(key.clone(), config)
            .build()
            .expect("builds");
        let start = Instant::now();
        let rec = recognizer.recognize_bits(&noisy).expect("recognition runs");
        let millis = start.elapsed().as_secs_f64() * 1e3;
        out.push(VoteAblation {
            vote,
            graph_vertices: rec.after_vote.min(3000),
            millis,
            success: rec.watermark.as_ref() == Some(watermark.value()),
        });
    }
    out
}

/// Ablation 2 result.
#[derive(Debug, Clone, Copy)]
pub struct TamperAblation {
    /// Whether tamper-proofing was enabled at embed time.
    pub tamperproof: bool,
    /// Number of random single-no-op attacks tried.
    pub trials: usize,
    /// How many attacked binaries still ran correctly.
    pub survived: usize,
}

/// Runs the tamper-proofing ablation: single random no-op insertions
/// against marked `twolf` with the lock-down on and off.
pub fn tamper_ablation(quick: bool) -> Vec<TamperAblation> {
    let trials = if quick { 10 } else { 40 };
    let w = nworkloads::by_name("twolf").expect("twolf exists");
    let key = WatermarkKey::new(
        0x7A_2B,
        w.training_input.iter().map(|&v| v as i64).collect(),
    );
    let mut rng = Prng::from_seed(0xAB2);
    let watermark = Watermark::random(64, &mut rng);
    let baseline = Machine::load(&w.image)
        .with_input(w.reference_input.clone())
        .run(500_000_000)
        .expect("baseline runs")
        .output;
    let mut out = Vec::new();
    for tamperproof in [true, false] {
        let config = NativeConfig {
            tamperproof,
            training_inputs: vec![w.reference_input.clone()],
            ..NativeConfig::default()
        };
        let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).expect("embeds");
        let mut survived = 0;
        for seed in 0..trials as u64 {
            let Ok(attacked) = nattacks::insert_nops(&mark.image, 1, seed) else {
                continue;
            };
            let ok = Machine::load(&attacked)
                .with_input(w.reference_input.clone())
                .run(500_000_000)
                .map(|o| o.output == baseline)
                .unwrap_or(false);
            if ok {
                survived += 1;
            }
        }
        out.push(TamperAblation {
            tamperproof,
            trials,
            survived,
        });
    }
    out
}

/// Ablation 3 result: one code generator's cost profile.
#[derive(Debug, Clone, Copy)]
pub struct CodegenAblation {
    /// The policy measured.
    pub policy: CodegenPolicy,
    /// Bytes added by 40 pieces.
    pub bytes_added: usize,
    /// Static conditional branches added.
    pub branches_added: usize,
    /// Did recognition round-trip?
    pub success: bool,
}

/// Runs the code-generator ablation on the CaffeineMark-like workload
/// (condition codegen needs sites visited at least twice with varying
/// locals — hot loop blocks, which jess's cold sites are not).
pub fn codegen_ablation(quick: bool) -> Vec<CodegenAblation> {
    let input = vec![if quick { 10 } else { 24 }];
    let key = setup::key(input.clone());
    let program = jworkloads::caffeinemark();
    let base_bytes = program.byte_size();
    let base_branches = program.conditional_branch_count();
    let mut out = Vec::new();
    for policy in [CodegenPolicy::LoopOnly, CodegenPolicy::PreferCondition] {
        let config = JavaConfig::for_watermark_bits(128)
            .with_pieces(40)
            .with_codegen(policy);
        let watermark = Watermark::random_for(&config, &key);
        let embedder = Embedder::builder(key.clone(), config.clone())
            .build()
            .expect("builds");
        let recognizer = Recognizer::builder(key.clone(), config)
            .build()
            .expect("builds");
        let marked = embedder.embed(&program, &watermark).expect("embeds");
        let rec = recognizer.recognize(&marked.program).expect("recognizes");
        out.push(CodegenAblation {
            policy,
            bytes_added: marked.program.byte_size() - base_bytes,
            branches_added: marked.program.conditional_branch_count() - base_branches,
            success: rec.watermark.as_ref() == Some(watermark.value()),
        });
    }
    out
}

/// Renders all three ablations.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation 1: recognition voting prefilter\n");
    let _ = writeln!(
        out,
        "{:<8} {:>16} {:>10} {:>9}",
        "vote", "graph vertices", "time (ms)", "success"
    );
    for a in vote_ablation(quick) {
        let _ = writeln!(
            out,
            "{:<8} {:>16} {:>10.1} {:>9}",
            if a.vote { "on" } else { "off" },
            a.graph_vertices,
            a.millis,
            a.success
        );
    }
    let _ = writeln!(out, "\nAblation 2: tamper-proofing vs single-no-op attacks\n");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>20}",
        "lock-down", "trials", "program survived"
    );
    for a in tamper_ablation(quick) {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>17}/{}",
            if a.tamperproof { "on" } else { "off" },
            a.trials,
            a.survived,
            a.trials
        );
    }
    let _ = writeln!(out, "\nAblation 3: loop vs condition code generation (40 pieces)\n");
    let _ = writeln!(
        out,
        "{:<18} {:>12} {:>16} {:>9}",
        "codegen", "bytes added", "branches added", "recovers"
    );
    for a in codegen_ablation(quick) {
        let _ = writeln!(
            out,
            "{:<18} {:>12} {:>16} {:>9}",
            format!("{:?}", a.policy),
            a.bytes_added,
            a.branches_added,
            a.success
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_prefilter_is_success_neutral_and_prunes() {
        let results = vote_ablation(true);
        let on = results.iter().find(|a| a.vote).unwrap();
        let off = results.iter().find(|a| !a.vote).unwrap();
        assert!(on.success && off.success, "vote must not change success");
        assert!(
            on.graph_vertices <= off.graph_vertices,
            "vote prunes candidates ({} vs {})",
            on.graph_vertices,
            off.graph_vertices
        );
    }

    #[test]
    fn tamperproofing_is_what_kills_attacked_binaries() {
        let results = tamper_ablation(true);
        let on = results.iter().find(|a| a.tamperproof).unwrap();
        let off = results.iter().find(|a| !a.tamperproof).unwrap();
        assert_eq!(on.survived, 0, "with lock-down, every attack kills");
        assert!(
            off.survived > 0,
            "without lock-down, some attacks land harmlessly"
        );
    }

    #[test]
    fn condition_codegen_costs_more_but_both_recover() {
        let results = codegen_ablation(true);
        let loop_only = &results[0];
        let condition = &results[1];
        assert!(loop_only.success && condition.success);
        assert!(
            condition.branches_added > loop_only.branches_added * 3,
            "condition codegen spends many more branches ({} vs {})",
            condition.branches_added,
            loop_only.branches_added
        );
    }
}
