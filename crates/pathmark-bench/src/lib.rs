//! Experiment harness for the paper's evaluation (Section 5).
//!
//! One module per figure/table of the paper. Each experiment exposes
//! `run(quick) -> String`: `quick = true` shrinks grids and trial counts
//! for CI-speed smoke runs (`cargo bench` drives that mode through the
//! `figures` bench target); `quick = false` produces the full series
//! recorded in `EXPERIMENTS.md` (`cargo run --release -p pathmark-bench
//! --bin fig8`, etc.).
//!
//! Mapping to the paper:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig5`] | Fig. 5 — pieces intact vs. P(recover 768-bit W) |
//! | [`fig8`] | Fig. 8(a–d) — bytecode cost and branch-insertion resilience |
//! | [`fig9`] | Fig. 9(a,b) — native size and time cost per SPEC-like program |
//! | [`tables`] | Sec. 5.1.2 / 5.2.2 attack matrices |
//! | [`fleet`] | batch fingerprinting throughput (Section 2's deployment model) |
//! | [`recognize`] | recognition-engine stage costs (Section 3.3's scan, packed) |

pub mod ablations;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod recognize;
pub mod tables;

/// Standard secret inputs used across experiments (kept here so every
/// figure uses the same keys and is reproducible).
pub mod setup {
    use pathmark_core::key::WatermarkKey;

    /// Secret input for the CaffeineMark-like workload.
    pub const CAFFEINE_INPUT: i64 = 40;
    /// Secret input (hot-loop iterations) for the Jess-like workload.
    pub const JESS_INPUT: i64 = 20_000;

    /// The experiment key for a given workload input.
    pub fn key(input: Vec<i64>) -> WatermarkKey {
        WatermarkKey::new(0x50_41_54_48_4D_41_52_4B_u64 ^ 0x2004, input)
    }
}
