//! Regenerates the batch-fingerprinting throughput table.
//! `cargo run --release -p pathmark-bench --bin fleet`
fn main() {
    print!("{}", pathmark_bench::fleet::run(std::env::args().any(|a| a == "--quick")));
}
