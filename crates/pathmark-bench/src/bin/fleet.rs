//! Regenerates the batch-fingerprinting throughput table and the
//! machine-readable `BENCH_fleet.json` next to the current directory.
//! `cargo run --release -p pathmark-bench --bin fleet [-- --quick]`

use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = pathmark_bench::fleet::bench(quick);
    print!("{}", pathmark_bench::fleet::render(&bench));

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = pathmark_bench::fleet::to_json(&bench, generated_unix);
    let path = "BENCH_fleet.json";
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}
