//! Regenerates Figure 9(a,b). `cargo run --release -p pathmark-bench --bin fig9`
fn main() {
    print!("{}", pathmark_bench::fig9::run(std::env::args().any(|a| a == "--quick")));
}
