//! Regenerates the recognition-engine stage table and the
//! machine-readable `BENCH_recognize.json` next to the current
//! directory.
//! `cargo run --release -p pathmark-bench --bin recognize [-- --quick]`

use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let bench = pathmark_bench::recognize::bench(quick);
    print!("{}", pathmark_bench::recognize::render(&bench));

    let generated_unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let json = pathmark_bench::recognize::to_json(&bench, generated_unix);
    let path = "BENCH_recognize.json";
    match std::fs::write(path, json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}
