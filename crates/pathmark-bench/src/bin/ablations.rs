//! Regenerates the ablation studies.
//! `cargo run --release -p pathmark-bench --bin ablations`
fn main() {
    print!("{}", pathmark_bench::ablations::run(std::env::args().any(|a| a == "--quick")));
}
