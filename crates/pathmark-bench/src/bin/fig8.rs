//! Regenerates Figure 8(a-d). `cargo run --release -p pathmark-bench --bin fig8`
fn main() {
    print!("{}", pathmark_bench::fig8::run(std::env::args().any(|a| a == "--quick")));
}
