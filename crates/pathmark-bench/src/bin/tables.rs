//! Regenerates the Section 5.1.2 / 5.2.2 attack matrices.
//! `cargo run --release -p pathmark-bench --bin tables`
fn main() {
    print!("{}", pathmark_bench::tables::run(std::env::args().any(|a| a == "--quick")));
}
