//! Regenerates Figure 5. `cargo run --release -p pathmark-bench --bin fig5`
fn main() {
    print!("{}", pathmark_bench::fig5::run(std::env::args().any(|a| a == "--quick")));
}
