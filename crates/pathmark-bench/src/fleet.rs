//! Batch-fingerprinting throughput: serial embed/recognize loops versus
//! the `pathmark-fleet` engine at several worker counts.
//!
//! This is the evaluation for the paper's *fingerprinting* deployment
//! model (Section 2): a distributor embeds a distinct watermark into
//! every copy. The serial baseline calls `embed`/`recognize` once per
//! copy — re-tracing the host every time — while the fleet engine
//! traces once (shared trace cache) and spreads the per-copy work over
//! a worker pool, driven through one [`Embedder`]/[`Recognizer`]
//! session per batch.
//!
//! Besides the human-readable table ([`render`]), the results serialize
//! to the machine-readable `BENCH_fleet.json` payload ([`to_json`])
//! that the `fleet` bench binary writes for CI trend tracking.

use std::fmt::Write as _;
use std::time::Instant;

use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
use pathmark_fleet::batch::{embed_batch, recognize_batch, RecognizeJob};
use pathmark_fleet::cache::TraceCache;
use pathmark_fleet::manifest::EmbedJobSpec;
use pathmark_fleet::pool::WorkerPool;
use pathmark_workloads::java as workloads;

use crate::setup;

/// One row of the throughput table.
#[derive(Debug, Clone)]
pub struct Throughput {
    /// `serial` or `fleet`.
    pub mode: &'static str,
    /// Worker threads (1 for the serial baseline).
    pub workers: usize,
    /// Wall-clock time for the whole batch, in milliseconds.
    pub millis: f64,
    /// Copies processed per second.
    pub copies_per_sec: f64,
}

/// A complete fleet bench run: the parameters plus both row sets.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// Whether the quick (CI-sized) grid was used.
    pub quick: bool,
    /// Copies per batch.
    pub copies: usize,
    /// Embedding throughput rows (serial baseline first).
    pub embed: Vec<Throughput>,
    /// Recognition throughput rows (serial baseline first).
    pub recognize: Vec<Throughput>,
}

/// Measures embed and recognize throughput over `copies` copies of the
/// CaffeineMark-like workload; returns (embed rows, recognize rows).
pub fn measure(copies: usize, worker_counts: &[usize]) -> (Vec<Throughput>, Vec<Throughput>) {
    let program = workloads::caffeinemark();
    let key = setup::key(vec![setup::CAFFEINE_INPUT]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(30);
    let embedder = Embedder::builder(key.clone(), config.clone())
        .build()
        .expect("bench key/config are sound");
    let recognizer = Recognizer::builder(key.clone(), config.clone())
        .build()
        .expect("bench key/config are sound");
    let jobs: Vec<EmbedJobSpec> = (0..copies)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // --- Embedding: serial loop (one trace per copy, one session each) …
    let mut embed_rows = Vec::new();
    let started = Instant::now();
    let mut serial_marked = Vec::with_capacity(copies);
    for spec in &jobs {
        let job_key = spec.effective_key(&key);
        let watermark = spec.watermark(&key, &config).expect("derived watermark");
        let marked = embedder
            .with_key(job_key)
            .embed(&program, &watermark)
            .expect("embeds");
        serial_marked.push(marked.program);
    }
    embed_rows.push(row("serial", 1, copies, started.elapsed()));

    // … versus the fleet engine (one shared trace, K workers).
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let cache = TraceCache::new();
        let started = Instant::now();
        let outcomes =
            embed_batch(&program, &embedder, &jobs, &pool, &cache).expect("host traces");
        assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
        embed_rows.push(row("fleet", workers, copies, started.elapsed()));
    }

    // --- Recognition: serial loop versus per-copy parallel batch.
    let rec_jobs: Vec<RecognizeJob> = jobs
        .iter()
        .zip(&serial_marked)
        .map(|(spec, marked)| RecognizeJob {
            job_id: spec.job_id.clone(),
            program: marked.clone(),
            expected_hex: None,
            seed: spec.effective_seed(key.seed),
        })
        .collect();
    let mut rec_rows = Vec::new();
    let started = Instant::now();
    for job in &rec_jobs {
        let job_key = pathmark_core::key::WatermarkKey::new(job.seed, key.input.clone());
        let rec = recognizer
            .with_key(job_key)
            .recognize(&job.program)
            .expect("recognizes");
        assert!(rec.watermark.is_some());
    }
    rec_rows.push(row("serial", 1, copies, started.elapsed()));
    for &workers in worker_counts {
        let pool = WorkerPool::new(workers);
        let started = Instant::now();
        let outcomes = recognize_batch(&rec_jobs, &recognizer, &pool);
        assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
        rec_rows.push(row("fleet", workers, copies, started.elapsed()));
    }
    (embed_rows, rec_rows)
}

fn row(mode: &'static str, workers: usize, copies: usize, elapsed: std::time::Duration) -> Throughput {
    let millis = elapsed.as_secs_f64() * 1e3;
    Throughput {
        mode,
        workers,
        millis,
        copies_per_sec: copies as f64 / elapsed.as_secs_f64(),
    }
}

/// Runs the bench at the standard grid for `quick`.
pub fn bench(quick: bool) -> FleetBench {
    let copies = if quick { 8 } else { 64 };
    let worker_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let (embed, recognize) = measure(copies, worker_counts);
    FleetBench {
        quick,
        copies,
        embed,
        recognize,
    }
}

/// Renders the human-readable batch-throughput table.
pub fn render(bench: &FleetBench) -> String {
    let mut out = String::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(
        out,
        "batch fingerprinting throughput — CaffeineMark-like, 128-bit W, {} copies, {cores} core(s)",
        bench.copies
    );
    let _ = writeln!(
        out,
        "(single-worker fleet gains come from the shared trace cache; worker\n\
         scaling additionally needs cores)"
    );
    for (title, rows) in [("embed", &bench.embed), ("recognize", &bench.recognize)] {
        let baseline = rows[0].millis;
        let _ = writeln!(out, "\n{title}:");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>12} {:>12} {:>9}",
            "mode", "workers", "wall ms", "copies/s", "speedup"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "{:<8} {:>8} {:>12.1} {:>12.1} {:>8.2}x",
                r.mode,
                r.workers,
                r.millis,
                r.copies_per_sec,
                baseline / r.millis
            );
        }
    }
    out
}

/// Serializes a bench run as the `BENCH_fleet.json` payload (hand-rolled
/// JSON, like everything else in the workspace). `generated_unix` is the
/// caller's wall-clock seconds since the epoch.
pub fn to_json(bench: &FleetBench, generated_unix: u64) -> String {
    fn rows_json(rows: &[Throughput]) -> String {
        let items: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"mode\":\"{}\",\"workers\":{},\"wall_ms\":{:.3},\"copies_per_sec\":{:.3}}}",
                    r.mode, r.workers, r.millis, r.copies_per_sec
                )
            })
            .collect();
        format!("[{}]", items.join(","))
    }
    format!(
        "{{\"bench\":\"fleet\",\"quick\":{},\"copies\":{},\"generated_unix\":{},\"embed\":{},\"recognize\":{}}}\n",
        bench.quick,
        bench.copies,
        generated_unix,
        rows_json(&bench.embed),
        rows_json(&bench.recognize),
    )
}

/// Renders the batch-throughput table (legacy entry point).
pub fn run(quick: bool) -> String {
    render(&bench(quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_payload_is_well_formed() {
        let bench = FleetBench {
            quick: true,
            copies: 8,
            embed: vec![Throughput {
                mode: "serial",
                workers: 1,
                millis: 12.5,
                copies_per_sec: 640.0,
            }],
            recognize: vec![Throughput {
                mode: "fleet",
                workers: 4,
                millis: 3.25,
                copies_per_sec: 2461.5,
            }],
        };
        let json = to_json(&bench, 1_700_000_000);
        assert!(json.starts_with("{\"bench\":\"fleet\",\"quick\":true,\"copies\":8,"));
        assert!(json.contains("\"generated_unix\":1700000000"), "{json}");
        assert!(
            json.contains("\"embed\":[{\"mode\":\"serial\",\"workers\":1,\"wall_ms\":12.500"),
            "{json}"
        );
        assert!(json.contains("\"recognize\":[{\"mode\":\"fleet\",\"workers\":4,"), "{json}");
        assert!(json.ends_with("}\n"), "one newline-terminated object");
    }
}
