//! The attack-resilience matrices of Sections 5.1.2 and 5.2.2 (the
//! paper reports these in prose; we render them as tables).

use pathmark_attacks::{java as jattacks, native as nattacks};
use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::native::{
    embed_native, extract, ExtractionSpec, NativeConfig, TracerKind,
};
use pathmark_crypto::Prng;
use pathmark_workloads::{java as jworkloads, native as nworkloads};
use nativesim::cpu::Machine;
use nativesim::Image;
use stackvm::interp::Vm;
use stackvm::Program;
use std::fmt::Write as _;

use crate::setup;

/// A named in-place program transformation from the attack suite.
type BoxedAttack = Box<dyn Fn(&mut Program)>;

/// One row of the bytecode attack matrix.
#[derive(Debug, Clone)]
pub struct JavaRow {
    /// Attack name.
    pub attack: &'static str,
    /// Does the attacked program still behave correctly?
    pub program_runs: bool,
    /// Is the watermark still recognized?
    pub mark_survives: bool,
}

/// Section 5.1.2: the distortive attack suite against a 256-bit mark in
/// the Jess-like workload.
pub fn java_matrix(quick: bool) -> Vec<JavaRow> {
    let input = vec![if quick { 400 } else { setup::JESS_INPUT / 4 }];
    let key = setup::key(input.clone());
    let config = JavaConfig::for_watermark_bits(256).with_pieces(80);
    let watermark = Watermark::random_for(&config, &key);
    let program = jworkloads::jess_like();
    let recognizer = Recognizer::builder(key.clone(), config.clone())
        .build()
        .expect("builds");
    let marked = Embedder::builder(key.clone(), config.clone())
        .build()
        .expect("builds")
        .embed(&program, &watermark)
        .expect("embeds")
        .program;
    let expected = Vm::new(&program)
        .with_input(input.clone())
        .run()
        .expect("runs")
        .output;

    let attacks: Vec<(&'static str, BoxedAttack)> = vec![
        ("none", Box::new(|_: &mut Program| {})),
        ("no-op insertion x500", Box::new(|p: &mut Program| jattacks::insert_nops(p, 500, 1))),
        (
            "branch sense inversion",
            Box::new(|p: &mut Program| jattacks::invert_branch_senses(p, 1.0, 2)),
        ),
        ("block reordering", Box::new(|p: &mut Program| jattacks::reorder_blocks(p, 3))),
        ("block splitting x200", Box::new(|p: &mut Program| jattacks::split_blocks(p, 200, 4))),
        (
            "block copying x50",
            Box::new(|p: &mut Program| {
                jattacks::copy_blocks(p, 50, 5);
            }),
        ),
        (
            "method merging",
            Box::new(|p: &mut Program| {
                jattacks::merge_methods(p, 31);
            }),
        ),
        (
            "method splitting",
            Box::new(|p: &mut Program| {
                jattacks::split_method(p, 32);
            }),
        ),
        (
            "branch insertion 50%",
            Box::new(|p: &mut Program| {
                let n = p.conditional_branch_count() / 2;
                jattacks::insert_random_branches(p, n, 6)
            }),
        ),
        (
            "branch insertion 600%",
            Box::new(|p: &mut Program| {
                let n = p.conditional_branch_count() * 6;
                jattacks::insert_random_branches(p, n, 7)
            }),
        ),
        (
            "stacked (all of the above)",
            Box::new(|p: &mut Program| {
                jattacks::insert_nops(p, 300, 8);
                jattacks::invert_branch_senses(p, 0.5, 9);
                jattacks::reorder_blocks(p, 10);
                jattacks::split_blocks(p, 80, 11);
            }),
        ),
    ];
    let mut rows = Vec::new();
    for (name, attack) in attacks {
        let mut attacked = marked.clone();
        attack(&mut attacked);
        let program_runs = Vm::new(&attacked)
            .with_input(input.clone())
            .with_budget(2_000_000_000)
            .run()
            .map(|o| o.output == expected)
            .unwrap_or(false);
        let mark_survives = recognizer
            .recognize(&attacked)
            .map(|r| r.watermark.as_ref() == Some(watermark.value()))
            .unwrap_or(false);
        rows.push(JavaRow {
            attack: name,
            program_runs,
            mark_survives,
        });
    }
    // Class encryption, with its runtime-tracing counter.
    let encrypted = jattacks::EncryptedProgram::encrypt(&marked, 0x1CE);
    rows.push(JavaRow {
        attack: "class encryption (static recognizer)",
        program_runs: encrypted
            .run(input.clone())
            .map(|o| o.output == expected)
            .unwrap_or(false),
        mark_survives: recognizer
            .recognize(encrypted.stub())
            .map(|r| r.watermark.as_ref() == Some(watermark.value()))
            .unwrap_or(false),
    });
    rows.push(JavaRow {
        attack: "class encryption (runtime tracing)",
        program_runs: true,
        mark_survives: encrypted
            .decrypt_for_runtime_tracing()
            .and_then(|p| recognizer.recognize(&p).ok())
            .map(|r| r.watermark.as_ref() == Some(watermark.value()))
            .unwrap_or(false),
    });
    rows
}

/// One row of the native attack matrix.
#[derive(Debug, Clone)]
pub struct NativeRow {
    /// Attack name.
    pub attack: &'static str,
    /// Does the attacked binary still behave correctly?
    pub program_runs: bool,
    /// Does the simple tracer recover the mark?
    pub simple_recovers: bool,
    /// Does the smart tracer recover the mark?
    pub smart_recovers: bool,
}

/// Section 5.2.2: the five native attacks against a 64-bit mark in the
/// parser-like program.
pub fn native_matrix(_quick: bool) -> Vec<NativeRow> {
    const BUDGET: u64 = 500_000_000;
    let w = nworkloads::by_name("parser").expect("parser exists");
    let key = WatermarkKey::new(
        0x7AB1E,
        w.training_input.iter().map(|&v| v as i64).collect(),
    );
    let config = NativeConfig {
        training_inputs: vec![w.reference_input.clone()],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(0x64);
    let watermark = Watermark::random(64, &mut rng);
    let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).expect("embeds");
    let spec = ExtractionSpec {
        begin: mark.begin,
        end: mark.end,
    };
    let baseline = Machine::load(&w.image)
        .with_input(w.reference_input.clone())
        .run(BUDGET)
        .expect("baseline runs")
        .output;
    let hops = nattacks::discover_hops(&mark.image, &key.native_input(), BUDGET)
        .expect("attacker traces");
    let sites: Vec<u32> = hops.iter().map(|h| h.call_site).collect();

    let attacker_key = WatermarkKey::new(
        0xE71,
        w.training_input.iter().map(|&v| v as i64).collect(),
    );
    let mut rng2 = Prng::from_seed(2);
    let second_bits: Vec<bool> = (0..64).map(|_| rng2.chance(0.5)).collect();

    let attacked: Vec<(&'static str, Option<Image>)> = vec![
        ("none", Some(mark.image.clone())),
        (
            "no-op insertion (one nop)",
            nattacks::insert_nops(&mark.image, 1, 5).ok(),
        ),
        (
            "branch sense inversion",
            nattacks::invert_branch_senses(&mark.image, 6).ok(),
        ),
        (
            "double watermarking",
            nattacks::double_watermark(&mark.image, &second_bits, &attacker_key, &config).ok(),
        ),
        (
            "bypass branch function",
            nattacks::bypass_branch_function(&mark.image, &hops).ok(),
        ),
        (
            "reroute via thunks",
            nattacks::reroute_calls(&mark.image, &sites).ok(),
        ),
    ];
    let mut rows = Vec::new();
    for (name, image) in attacked {
        let Some(image) = image else {
            rows.push(NativeRow {
                attack: name,
                program_runs: false,
                simple_recovers: false,
                smart_recovers: false,
            });
            continue;
        };
        let program_runs = Machine::load(&image)
            .with_input(w.reference_input.clone())
            .run(BUDGET)
            .map(|o| o.output == baseline)
            .unwrap_or(false);
        let recovers = |tracer| {
            extract(&image, &key.native_input(), spec, tracer, BUDGET)
                .map(|bits| Watermark::from_bits(&bits).value() == watermark.value())
                .unwrap_or(false)
        };
        rows.push(NativeRow {
            attack: name,
            program_runs,
            simple_recovers: recovers(TracerKind::Simple),
            smart_recovers: recovers(TracerKind::Smart),
        });
    }
    rows
}

/// One row of the related-work comparison.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Attack name.
    pub attack: &'static str,
    /// Does the path-based watermark survive?
    pub path_based: bool,
    /// Does the Davidson–Myhrvold block-order watermark survive?
    pub davidson_myhrvold: bool,
    /// Does the Stern et al. frequency watermark survive?
    pub stern: bool,
}

/// Section 6 made measurable: the same distortive attacks against the
/// path-based watermark and the two baseline schemes the paper compares
/// against (block-order and instruction-frequency watermarks).
pub fn comparison_matrix(quick: bool) -> Vec<ComparisonRow> {
    use pathmark_core::baseline::{davidson_myhrvold as dm, stern_frequency as stern};

    let input = vec![if quick { 400 } else { 2000 }];
    let key = setup::key(input.clone());
    let config = JavaConfig::for_watermark_bits(128).with_pieces(50);
    let watermark = Watermark::random_for(&config, &key);
    let original = jworkloads::jess_like();

    // Embed all three schemes into the same subject.
    let recognizer = Recognizer::builder(key.clone(), config.clone())
        .build()
        .expect("builds");
    let mut marked = Embedder::builder(key.clone(), config)
        .build()
        .expect("builds")
        .embed(&original, &watermark)
        .expect("path-based embeds")
        .program;
    // DM gets the block-richest non-entry function (the Stern chips go
    // into `main`; keeping the schemes in separate functions isolates
    // their failures).
    let dm_func = marked
        .iter_functions()
        .filter(|&(id, f)| id != marked.entry && dm::blocks_distinct(f))
        .map(|(id, f)| (id, stackvm::cfg::Cfg::build(f).len()))
        .filter(|&(_, n)| n >= 3)
        .max_by_key(|&(_, n)| n)
        .map(|(id, _)| id)
        .expect("a reorderable non-entry function exists");
    let dm_value = pathmark_math::bigint::BigUint::from(41u64);
    // DM recognition is informed: keep the pre-DM program as its
    // reference.
    let dm_reference = marked.clone();
    dm::embed(&mut marked, dm_func, &dm_value).expect("DM embeds");
    let stern_reference = marked.clone();
    let stern_chips = [true, false, true, true];
    stern::embed(&mut marked, stern_chips, 16);

    let attacks: Vec<(&'static str, BoxedAttack)> = vec![
        ("none", Box::new(|_: &mut Program| {})),
        (
            "no-op insertion x300",
            Box::new(|p: &mut Program| jattacks::insert_nops(p, 300, 21)),
        ),
        (
            "block reordering",
            Box::new(|p: &mut Program| jattacks::reorder_blocks(p, 22)),
        ),
        (
            "redundant instructions",
            Box::new(|p: &mut Program| {
                // Flood the program with dead arithmetic over every
                // carrier opcode (the attack Section 6 describes against
                // frequency-based marks), plus bogus branches.
                let entry = p.entry;
                let f = p.function_mut(entry);
                let scratch = stackvm::edit::reserve_locals(f, 1);
                let mut flood = Vec::new();
                for _ in 0..64 {
                    for op in pathmark_core::baseline::stern_frequency::CARRIERS {
                        flood.push(stackvm::insn::Insn::Load(scratch));
                        flood.push(stackvm::insn::Insn::Const(0));
                        flood.push(stackvm::insn::Insn::Bin(op));
                        flood.push(stackvm::insn::Insn::Store(scratch));
                    }
                }
                stackvm::edit::insert_snippet(f, 0, flood);
                let n = p.conditional_branch_count() / 4;
                jattacks::insert_random_branches(p, n.max(200), 23)
            }),
        ),
        (
            "branch sense inversion",
            Box::new(|p: &mut Program| jattacks::invert_branch_senses(p, 1.0, 24)),
        ),
    ];
    let mut rows = Vec::new();
    for (name, attack) in attacks {
        let mut attacked = marked.clone();
        attack(&mut attacked);
        let path_based = recognizer
            .recognize(&attacked)
            .map(|r| r.watermark.as_ref() == Some(watermark.value()))
            .unwrap_or(false);
        let davidson_myhrvold =
            dm::recognize(&dm_reference, &attacked, dm_func) == Some(dm_value.clone());
        let stern_ok = stern::recognize(&stern_reference, &attacked, 16) == stern_chips;
        rows.push(ComparisonRow {
            attack: name,
            path_based,
            davidson_myhrvold,
            stern: stern_ok,
        });
    }
    rows
}

/// Renders both matrices.
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Section 5.1.2: bytecode attack matrix (jess, 256-bit watermark)\n"
    );
    let _ = writeln!(out, "{:<38} {:>6} {:>10}", "attack", "runs?", "mark?");
    for row in java_matrix(quick) {
        let _ = writeln!(
            out,
            "{:<38} {:>6} {:>10}",
            row.attack,
            if row.program_runs { "yes" } else { "NO" },
            if row.mark_survives { "survives" } else { "lost" }
        );
    }
    let _ = writeln!(
        out,
        "\nSection 5.2.2: native attack matrix (parser, 64-bit watermark)\n"
    );
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>8} {:>8}",
        "attack", "runs?", "simple", "smart"
    );
    for row in native_matrix(quick) {
        let _ = writeln!(
            out,
            "{:<28} {:>6} {:>8} {:>8}",
            row.attack,
            if row.program_runs { "yes" } else { "NO" },
            if row.simple_recovers { "yes" } else { "no" },
            if row.smart_recovers { "yes" } else { "no" }
        );
    }
    let _ = writeln!(
        out,
        "\nSection 6 comparison: path-based vs baseline schemes (jess)\n"
    );
    let _ = writeln!(
        out,
        "{:<26} {:>11} {:>14} {:>8}",
        "attack", "path-based", "block-order", "stern"
    );
    for row in comparison_matrix(quick) {
        let mark = |b: bool| if b { "survives" } else { "LOST" };
        let _ = writeln!(
            out,
            "{:<26} {:>11} {:>14} {:>8}",
            row.attack,
            mark(row.path_based),
            mark(row.davidson_myhrvold),
            mark(row.stern)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_matrix_matches_the_paper() {
        let rows = native_matrix(true);
        let by_name = |n: &str| rows.iter().find(|r| r.attack == n).unwrap();
        // Unattacked: everything works.
        let none = by_name("none");
        assert!(none.program_runs && none.simple_recovers && none.smart_recovers);
        // Attacks 1-4 break the program.
        for n in [
            "no-op insertion (one nop)",
            "branch sense inversion",
            "double watermarking",
            "bypass branch function",
        ] {
            assert!(!by_name(n).program_runs, "{n} must break the program");
        }
        // Attack 5: program runs; simple fails; smart recovers.
        let reroute = by_name("reroute via thunks");
        assert!(reroute.program_runs);
        assert!(!reroute.simple_recovers);
        assert!(reroute.smart_recovers);
    }

    #[test]
    fn comparison_shows_path_based_outlasting_baselines() {
        let rows = comparison_matrix(true);
        let by_name = |n: &str| rows.iter().find(|r| r.attack == n).unwrap();
        // Sanity: all three schemes readable when unattacked.
        let none = by_name("none");
        assert!(none.path_based && none.davidson_myhrvold && none.stern);
        // Block reordering kills the block-order mark, not path-based.
        let reorder = by_name("block reordering");
        assert!(reorder.path_based && !reorder.davidson_myhrvold);
        // Redundant-instruction insertion kills the frequency mark, not
        // path-based.
        let redundant = by_name("redundant instructions");
        assert!(redundant.path_based && !redundant.stern);
    }

    #[test]
    fn java_matrix_matches_the_paper() {
        let rows = java_matrix(true);
        let by_name = |n: &str| rows.iter().find(|r| r.attack == n).unwrap();
        // Every attack preserves program behavior (they are
        // semantics-preserving transformations).
        for row in &rows {
            if row.attack != "class encryption (runtime tracing)" {
                assert!(row.program_runs, "{} must preserve semantics", row.attack);
            }
        }
        // Only overwhelming branch insertion and class encryption kill
        // the mark.
        assert!(by_name("none").mark_survives);
        assert!(by_name("branch sense inversion").mark_survives);
        assert!(by_name("block reordering").mark_survives);
        assert!(by_name("branch insertion 50%").mark_survives);
        assert!(!by_name("class encryption (static recognizer)").mark_survives);
        assert!(by_name("class encryption (runtime tracing)").mark_survives);
    }
}
