//! Recognition-engine throughput: the packed rolling-window scan,
//! stage by stage, serial versus sharded.
//!
//! Recognition is the paper's dominant cost (Section 3.3 decrypts every
//! sliding 64-bit window of the trace), so this bench watches it
//! closely: a corpus of distinct watermarks is embedded into the
//! CaffeineMark-like workload under one key, then recognized
//!
//! * **serially** — a fresh [`Recognizer`] per copy, mirroring what the
//!   legacy free functions cost a per-call API user (key-derived crypto
//!   re-derived every copy), and
//! * **sharded** — one warm session (crypto derived once, at `build()`)
//!   whose window scan is split across a [`WorkerPool`] at several
//!   worker counts via [`recognize_program_sharded`].
//!
//! Every row carries the per-stage wall times (trace / scan_roll /
//! scan_decrypt / vote / graph / crt, plus merge, queue-wait, and
//! job-run on the sharded path) from a [`MemorySink`] shared by the session *and* the worker
//! pool, the scan counters (windows scanned / skipped by the
//! constant-run pre-reject / actually decrypted), and the pool
//! counters (jobs run / merge passes), so a regression in any one
//! stage — including pool contention at high worker counts — is
//! visible in `BENCH_recognize.json` rather than smeared into a single
//! number.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use pathmark_core::java::{JavaConfig, Recognizer};
use pathmark_core::key::Watermark;
use pathmark_core::ScanMode;
use pathmark_crypto::Prng;
use pathmark_fleet::pool::WorkerPool;
use pathmark_fleet::shard::recognize_program_sharded;
use pathmark_telemetry::{Counter, MemorySink, Stage, Telemetry};
use pathmark_workloads::java as workloads;
use stackvm::{ExecTier, Program};

use crate::setup;

/// The stages a recognition row reports, in display order. The last
/// two are pool-side: `queue_wait` is how long shard jobs sat in the
/// pool queue before a worker picked them up, `job_run` is the wall
/// time workers spent inside shard closures. Comparing `queue_wait`
/// across worker counts is how the sharded-8-slower-than-sharded-4
/// cliff shows up as contention rather than as a mystery.
/// The serial tier ladder, slowest engine first.
const TIERS: [ExecTier; 3] = [
    ExecTier::Reference,
    ExecTier::Predecoded,
    ExecTier::Compiled,
];

const STAGES: [Stage; 9] = [
    Stage::Trace,
    Stage::ScanRoll,
    Stage::ScanDecrypt,
    Stage::Vote,
    Stage::Graph,
    Stage::Crt,
    Stage::Merge,
    Stage::QueueWait,
    Stage::JobRun,
];

/// One row of the recognition-throughput table.
#[derive(Debug, Clone)]
pub struct RecognizeRow {
    /// `serial` or `sharded`.
    pub mode: &'static str,
    /// Execution tier the row's tracer ran (`reference` / `predecoded`
    /// / `compiled`). Sharded rows run the default (compiled) tier.
    pub tier: &'static str,
    /// Worker threads (1 for the serial baseline).
    pub workers: usize,
    /// Wall-clock time for the whole corpus, in milliseconds: the sum
    /// over copies of the fastest observed per-copy time (see
    /// [`measure`]).
    pub millis: f64,
    /// Copies recognized per second.
    pub copies_per_sec: f64,
    /// Total per-stage wall milliseconds across the corpus, in
    /// [`STAGES`] order.
    pub stage_ms: [f64; STAGES.len()],
    /// Scan counters: (windows scanned, skipped by the constant-run
    /// pre-reject, actually decrypted).
    pub windows: (u64, u64, u64),
    /// Pool counters: (jobs run on the worker pool, shard-merge
    /// passes). Both zero on the serial row, which never touches the
    /// pool.
    pub pool: (u64, u64),
}

impl RecognizeRow {
    /// Fraction of scanned windows the pre-reject skipped (0 when no
    /// windows were scanned).
    pub fn skip_rate(&self) -> f64 {
        let (scanned, skipped, _) = self.windows;
        if scanned == 0 {
            0.0
        } else {
            skipped as f64 / scanned as f64
        }
    }

    /// Windows that actually reached the cipher, per recognized copy.
    pub fn decrypts_per_copy(&self, copies: usize) -> f64 {
        let (_, _, decrypted) = self.windows;
        decrypted as f64 / copies.max(1) as f64
    }
}

/// A complete recognition bench run.
#[derive(Debug, Clone)]
pub struct RecognizeBench {
    /// Whether the quick (CI-sized) grid was used.
    pub quick: bool,
    /// Copies in the corpus.
    pub copies: usize,
    /// Rows: serial baseline first, then sharded per worker count.
    pub rows: Vec<RecognizeRow>,
}

/// Builds the corpus: `copies` distinct watermarks embedded into the
/// CaffeineMark-like workload under one key (the paper's fingerprinting
/// model with a shared recognition key).
fn corpus(copies: usize, key_input: Vec<i64>, config: &JavaConfig) -> Vec<Program> {
    let program = workloads::caffeinemark();
    let key = setup::key(key_input);
    let embedder = pathmark_core::java::Embedder::builder(key, config.clone())
        .build()
        .expect("bench key/config are sound");
    (0..copies)
        .map(|i| {
            let mut rng = Prng::from_seed(0x5ECD ^ (i as u64) << 8);
            let watermark = Watermark::random(config.watermark_bits, &mut rng);
            embedder
                .embed(&program, &watermark)
                .expect("embeds")
                .program
        })
        .collect()
}

fn row(
    mode: &'static str,
    tier: ExecTier,
    workers: usize,
    copies: usize,
    elapsed: std::time::Duration,
    sink: &MemorySink,
) -> RecognizeRow {
    let mut stage_ms = [0.0; STAGES.len()];
    for (slot, stage) in STAGES.iter().enumerate() {
        stage_ms[slot] = sink.stage(*stage).total_nanos as f64 / 1e6;
    }
    RecognizeRow {
        mode,
        tier: tier.as_str(),
        workers,
        millis: elapsed.as_secs_f64() * 1e3,
        copies_per_sec: copies as f64 / elapsed.as_secs_f64(),
        stage_ms,
        windows: (
            sink.counter(Counter::WindowsScanned),
            sink.counter(Counter::WindowsSkipped),
            sink.counter(Counter::WindowsDecrypted),
        ),
        pool: (
            sink.stage(Stage::JobRun).count,
            sink.stage(Stage::Merge).count,
        ),
    }
}

/// Measures recognition throughput over the corpus; one serial
/// baseline per execution tier (reference, predecoded, compiled —
/// slowest engine first), then one sharded row per worker count.
///
/// Each copy is timed individually, the sweep repeats `reps` times with
/// the rows **interleaved** (serial, sharded×N, serial, sharded×N, …),
/// and a row's wall time is the sum of its **per-copy minima** across
/// reps. On a shared or thermally-throttled machine a scheduler stall
/// lands on whatever copy happens to be running; per-copy minima
/// discard those stalls mode-by-mode, so the rows compare engines, not
/// scheduling accidents. (Within a rep a sharded session stays warm
/// across the whole corpus, and copy order is fixed, so copy `c`'s
/// minimum compares identical cache states.)
pub fn measure(copies: usize, worker_counts: &[usize], reps: usize) -> Vec<RecognizeRow> {
    let key = setup::key(vec![setup::CAFFEINE_INPUT]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(30);
    let programs = corpus(copies, key.input.clone(), &config);

    // Warm-up pass: fault in the whole corpus and every code path
    // before any timing starts — and hold the tiers to the paper's
    // contract: all three engines recognize every copy identically.
    {
        let session = Recognizer::builder(key.clone(), config.clone())
            .build()
            .expect("bench key/config are sound");
        let pool = WorkerPool::new(2);
        let tiers: Vec<Recognizer> = TIERS
            .iter()
            .map(|&tier| {
                Recognizer::builder(key.clone(), config.clone())
                    .exec_tier(tier)
                    .build()
                    .expect("bench key/config are sound")
            })
            .collect();
        let two_phase = Recognizer::builder(key.clone(), config.clone())
            .scan_mode(ScanMode::TwoPhase)
            .build()
            .expect("bench key/config are sound");
        for program in &programs {
            let rec = session.recognize(program).expect("recognizes");
            assert!(rec.watermark.is_some(), "corpus must carry its marks");
            let sharded =
                recognize_program_sharded(program, &session, 2, &pool).expect("recognizes");
            assert_eq!(sharded, rec, "sharded scan must stay bit-identical");
            let reference = two_phase.recognize(program).expect("recognizes");
            assert_eq!(reference, rec, "fused scan must stay bit-identical");
            for tiered in &tiers {
                let got = tiered.recognize(program).expect("recognizes");
                assert_eq!(
                    got,
                    rec,
                    "tier {} must stay bit-identical",
                    tiered.exec_tier()
                );
            }
        }
    }

    // (mode, tier, workers): the serial tier ladder first, then the
    // sharded grid on the default (compiled) tier.
    let mut specs: Vec<(&'static str, ExecTier, usize)> =
        TIERS.iter().map(|&tier| ("serial", tier, 1)).collect();
    specs.extend(
        worker_counts
            .iter()
            .map(|&w| ("sharded", ExecTier::default(), w)),
    );

    // best_copy[slot][c]: fastest observed time for copy `c` in mode
    // `slot`. best_rep[slot]: (rep wall, sink) of the fastest whole rep
    // — its telemetry provides the row's stage/counter columns.
    let mut best_copy = vec![vec![std::time::Duration::MAX; copies]; specs.len()];
    let mut best_rep: Vec<Option<(std::time::Duration, Arc<MemorySink>)>> =
        vec![None; specs.len()];
    for _ in 0..reps.max(1) {
        for (slot, &(mode, tier, workers)) in specs.iter().enumerate() {
            let sink = Arc::new(MemorySink::new());
            // Session/pool setup is untimed for the sharded rows — the
            // whole point of a warm session is that it is built once.
            // The serial rows time session construction per copy, as
            // the legacy free functions cost a per-call user (key
            // crypto re-derived every copy).
            let warm = (mode != "serial").then(|| {
                let session = Recognizer::builder(key.clone(), config.clone())
                    .telemetry(Telemetry::new(sink.clone()))
                    .exec_tier(tier)
                    .build()
                    .expect("bench key/config are sound");
                // The pool shares the row's sink so queue-wait and
                // job-run spans land in the same row as the scan
                // stages they explain.
                let pool = WorkerPool::with_telemetry(workers, Telemetry::new(sink.clone()));
                (session, pool)
            });
            let mut rep_wall = std::time::Duration::ZERO;
            for (c, program) in programs.iter().enumerate() {
                let started = Instant::now();
                let rec = match &warm {
                    None => Recognizer::builder(key.clone(), config.clone())
                        .telemetry(Telemetry::new(sink.clone()))
                        .exec_tier(tier)
                        .build()
                        .expect("bench key/config are sound")
                        .recognize(program)
                        .expect("recognizes"),
                    Some((session, pool)) => {
                        recognize_program_sharded(program, session, workers, pool)
                            .expect("recognizes")
                    }
                };
                assert!(rec.watermark.is_some());
                let elapsed = started.elapsed();
                rep_wall += elapsed;
                best_copy[slot][c] = best_copy[slot][c].min(elapsed);
            }
            if best_rep[slot]
                .as_ref()
                .is_none_or(|(fastest, _)| rep_wall < *fastest)
            {
                best_rep[slot] = Some((rep_wall, sink));
            }
        }
    }

    specs
        .iter()
        .enumerate()
        .map(|(slot, &(mode, tier, workers))| {
            let wall = best_copy[slot].iter().sum();
            let (_, sink) = best_rep[slot].take().expect("reps >= 1 fills every slot");
            row(mode, tier, workers, copies, wall, &sink)
        })
        .collect()
}

/// Runs the bench at the standard grid for `quick`.
pub fn bench(quick: bool) -> RecognizeBench {
    let copies = if quick { 16 } else { 32 };
    let reps = if quick { 4 } else { 5 };
    let worker_counts: &[usize] = &[1, 4, 8];
    RecognizeBench {
        quick,
        copies,
        rows: measure(copies, worker_counts, reps),
    }
}

/// Renders the human-readable stage-level table.
pub fn render(bench: &RecognizeBench) -> String {
    let mut out = String::new();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(
        out,
        "recognition engine — CaffeineMark-like, 128-bit W, {} copies, {cores} core(s)",
        bench.copies
    );
    let _ = writeln!(
        out,
        "(stage columns are total wall ms across the corpus; serial re-derives\n\
         key crypto per copy, sharded amortizes one session over the batch)"
    );
    let _ = write!(
        out,
        "\n{:<8} {:<10} {:>8} {:>10} {:>10}",
        "mode", "tier", "workers", "wall ms", "copies/s"
    );
    for stage in STAGES {
        let _ = write!(out, " {:>9}", stage.as_str());
    }
    let _ = writeln!(
        out,
        " {:>11} {:>11} {:>7} {:>7}",
        "skipped", "decrypted", "jobs", "merges"
    );
    for r in &bench.rows {
        let _ = write!(
            out,
            "{:<8} {:<10} {:>8} {:>10.1} {:>10.1}",
            r.mode, r.tier, r.workers, r.millis, r.copies_per_sec
        );
        for ms in r.stage_ms {
            let _ = write!(out, " {:>9.2}", ms);
        }
        let (scanned, skipped, decrypted) = r.windows;
        let pct = |part: u64| {
            if scanned == 0 {
                0.0
            } else {
                100.0 * part as f64 / scanned as f64
            }
        };
        let (jobs, merges) = r.pool;
        let _ = writeln!(
            out,
            " {:>9.1}% {:>9.1}% {:>7} {:>7}",
            pct(skipped),
            pct(decrypted),
            jobs,
            merges
        );
    }
    out
}

/// Serializes a bench run as the `BENCH_recognize.json` payload
/// (hand-rolled JSON, like everything else in the workspace).
pub fn to_json(bench: &RecognizeBench, generated_unix: u64) -> String {
    let rows: Vec<String> = bench
        .rows
        .iter()
        .map(|r| {
            let stages: Vec<String> = STAGES
                .iter()
                .zip(r.stage_ms)
                .map(|(stage, ms)| format!("\"{}\":{:.3}", stage.as_str(), ms))
                .collect();
            let (scanned, skipped, decrypted) = r.windows;
            let (jobs, merges) = r.pool;
            format!(
                "{{\"mode\":\"{}\",\"tier\":\"{}\",\"workers\":{},\"wall_ms\":{:.3},\
                 \"copies_per_sec\":{:.3},\
                 \"skip_rate\":{:.4},\"decrypts_per_copy\":{:.1},\
                 \"stages\":{{{}}},\"windows\":{{\"scanned\":{},\"skipped\":{},\"decrypted\":{}}},\
                 \"pool\":{{\"jobs\":{},\"merges\":{}}}}}",
                r.mode,
                r.tier,
                r.workers,
                r.millis,
                r.copies_per_sec,
                r.skip_rate(),
                r.decrypts_per_copy(bench.copies),
                stages.join(","),
                scanned,
                skipped,
                decrypted,
                jobs,
                merges
            )
        })
        .collect();
    format!(
        "{{\"bench\":\"recognize\",\"quick\":{},\"copies\":{},\"generated_unix\":{},\"rows\":[{}]}}\n",
        bench.quick,
        bench.copies,
        generated_unix,
        rows.join(","),
    )
}

/// Renders the stage-level table (legacy entry point).
pub fn run(quick: bool) -> String {
    render(&bench(quick))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_payload_is_well_formed() {
        let bench = RecognizeBench {
            quick: true,
            copies: 8,
            rows: vec![RecognizeRow {
                mode: "serial",
                tier: "compiled",
                workers: 1,
                millis: 20.5,
                copies_per_sec: 390.2,
                stage_ms: [8.0, 3.0, 1.0, 0.5, 0.25, 0.125, 0.0, 1.5, 3.25],
                windows: (100_000, 90_000, 10_000),
                pool: (32, 4),
            }],
        };
        let json = to_json(&bench, 1_700_000_000);
        assert!(json.starts_with("{\"bench\":\"recognize\",\"quick\":true,\"copies\":8,"));
        assert!(
            json.contains("\"mode\":\"serial\",\"tier\":\"compiled\",\"workers\":1"),
            "{json}"
        );
        assert!(json.contains("\"generated_unix\":1700000000"), "{json}");
        assert!(
            json.contains("\"skip_rate\":0.9000,\"decrypts_per_copy\":1250.0"),
            "{json}"
        );
        assert!(
            json.contains(
                "\"stages\":{\"trace\":8.000,\"scan_roll\":3.000,\"scan_decrypt\":1.000,\"vote\":0.500,"
            ),
            "{json}"
        );
        assert!(
            json.contains("\"queue_wait\":1.500,\"job_run\":3.250"),
            "{json}"
        );
        assert!(
            json.contains("\"windows\":{\"scanned\":100000,\"skipped\":90000,\"decrypted\":10000}"),
            "{json}"
        );
        assert!(json.contains("\"pool\":{\"jobs\":32,\"merges\":4}"), "{json}");
        assert!(json.ends_with("}\n"), "one newline-terminated object");
    }

    #[test]
    fn tiny_measure_runs_and_orders_rows() {
        // `bench(true)` is the CI shape (16 copies x 4 reps) and far too
        // slow for a debug-build unit test; a 2-copy/1-rep sweep walks
        // the same code path (corpus embed, warm-up equivalence
        // asserts, per-copy timing, row construction).
        let rows = measure(2, &[2], 1);
        assert_eq!(rows.len(), 4, "three serial tiers plus one sharded row");
        assert_eq!(rows[0].mode, "serial");
        assert_eq!(rows[0].tier, "reference");
        assert_eq!(rows[1].tier, "predecoded");
        assert_eq!(rows[2].tier, "compiled");
        assert_eq!(rows[3].mode, "sharded");
        assert_eq!(rows[3].tier, "compiled");
        assert_eq!(rows[3].workers, 2);
        for r in &rows {
            assert!(r.millis > 0.0);
            assert!(r.copies_per_sec > 0.0);
            assert!(r.windows.0 > 0, "windows must be scanned");
        }
        assert_eq!(rows[0].pool, (0, 0), "serial rows never touch the pool");
        let (jobs, merges) = rows[3].pool;
        assert!(jobs > 0, "sharded rows must run pool jobs");
        assert!(merges > 0, "sharded rows must merge shard results");
        let table = render(&RecognizeBench {
            quick: true,
            copies: 2,
            rows,
        });
        assert!(table.contains("copies/s"), "{table}");
    }
}
