//! Figure 9: native watermarking cost across the ten SPECint-like
//! programs, for 128/256/512-bit watermarks.
//!
//! * (a) relative increase in total size (text + data);
//! * (b) runtime slowdown on the reference input (executed-instruction
//!   ratio; deterministic stand-in for wall-clock).

use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::native::{embed_native, NativeConfig};
use pathmark_crypto::Prng;
use pathmark_workloads::native as workloads;
use nativesim::cpu::Machine;
use nativesim::Image;
use std::fmt::Write as _;

const BUDGET: u64 = 2_000_000_000;

/// One program × watermark-size measurement.
#[derive(Debug, Clone, Copy)]
pub struct NativeCost {
    /// Program name.
    pub program: &'static str,
    /// Watermark width in bits.
    pub wm_bits: usize,
    /// Relative size increase (0.1 = +10%).
    pub size_increase: f64,
    /// Relative slowdown on the reference input.
    pub slowdown: f64,
}

fn instructions_of(image: &Image, input: &[u32]) -> u64 {
    Machine::load(image)
        .with_input(input.to_vec())
        .run(BUDGET)
        .expect("program runs")
        .instructions
}

/// Runs the full sweep. `quick` restricts to three programs and one
/// watermark size.
pub fn compute(quick: bool) -> Vec<NativeCost> {
    let wm_sizes: &[usize] = if quick { &[128] } else { &[128, 256, 512] };
    let mut programs = workloads::all();
    if quick {
        programs.truncate(3);
    }
    let mut out = Vec::new();
    for w in &programs {
        let key = WatermarkKey::new(
            0x9_2004,
            w.training_input.iter().map(|&v| v as i64).collect(),
        );
        let config = NativeConfig {
            training_inputs: vec![w.reference_input.clone()],
            ..NativeConfig::default()
        };
        let baseline = instructions_of(&w.image, &w.reference_input);
        for &bits in wm_sizes {
            let mut rng = Prng::from_seed(bits as u64);
            let watermark = Watermark::random(bits, &mut rng);
            let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config)
                .unwrap_or_else(|e| panic!("{} {bits}: {e}", w.name));
            let marked_cost = instructions_of(&mark.image, &w.reference_input);
            out.push(NativeCost {
                program: w.name,
                wm_bits: bits,
                size_increase: mark.size_after as f64 / mark.size_before as f64 - 1.0,
                slowdown: marked_cost as f64 / baseline as f64 - 1.0,
            });
        }
    }
    out
}

/// Renders Figures 9(a) and 9(b) as one table plus means.
pub fn run(quick: bool) -> String {
    let costs = compute(quick);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 9(a,b): native watermarking cost per program\n"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>14} {:>10}",
        "program", "wm bits", "size increase", "slowdown"
    );
    for c in &costs {
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>13.1}% {:>9.2}%",
            c.program,
            c.wm_bits,
            c.size_increase * 100.0,
            c.slowdown * 100.0
        );
    }
    // Means per watermark size (the paper reports 10.8%–11.4% size and
    // −0.65%–0.85% time).
    let mut sizes: Vec<usize> = costs.iter().map(|c| c.wm_bits).collect();
    sizes.sort_unstable();
    sizes.dedup();
    let _ = writeln!(out);
    for bits in sizes {
        let of_size: Vec<&NativeCost> = costs.iter().filter(|c| c.wm_bits == bits).collect();
        let mean_size =
            of_size.iter().map(|c| c.size_increase).sum::<f64>() / of_size.len() as f64;
        let mean_slow = of_size.iter().map(|c| c.slowdown).sum::<f64>() / of_size.len() as f64;
        let _ = writeln!(
            out,
            "mean ({bits}-bit): size {:+.1}%, time {:+.2}%",
            mean_size * 100.0,
            mean_slow * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_the_papers_shape() {
        // Quick sweep: modest size growth, near-zero slowdown.
        for c in compute(true) {
            assert!(
                (0.0..0.35).contains(&c.size_increase),
                "{}: size increase {:.1}% out of band",
                c.program,
                c.size_increase * 100.0
            );
            assert!(
                (-0.02..0.08).contains(&c.slowdown),
                "{}: slowdown {:.2}% out of band",
                c.program,
                c.slowdown * 100.0
            );
        }
    }
}
