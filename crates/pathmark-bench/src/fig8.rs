//! Figure 8: bytecode watermarking cost and resilience.
//!
//! * (a) runtime slowdown versus number of pieces inserted, for the
//!   CaffeineMark-like and Jess-like workloads;
//! * (b) size increase versus number of pieces;
//! * (c) survivable random branch insertion versus number of pieces,
//!   for 128/256/512-bit watermarks;
//! * (d) slowdown caused by the branch-insertion *attack* versus the
//!   fraction of branches added.
//!
//! Cost is measured in executed interpreter instructions (deterministic;
//! stands in for the paper's wall-clock — see `DESIGN.md`).

use pathmark_attacks::java as attacks;
use pathmark_core::java::{CodegenPolicy, Embedder, JavaConfig, Recognizer};
use pathmark_core::key::Watermark;
use pathmark_workloads::java as workloads;
use stackvm::interp::Vm;
use stackvm::Program;
use std::fmt::Write as _;

use crate::setup;

fn instructions_of(program: &Program, input: &[i64]) -> u64 {
    Vm::new(program)
        .with_input(input.to_vec())
        .with_budget(2_000_000_000)
        .run()
        .expect("workload runs")
        .instructions
}

struct Workload {
    name: &'static str,
    program: Program,
    input: Vec<i64>,
}

fn both_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "caffeinemark",
            program: workloads::caffeinemark(),
            input: vec![setup::CAFFEINE_INPUT],
        },
        Workload {
            name: "jess",
            program: workloads::jess_like(),
            input: vec![setup::JESS_INPUT],
        },
    ]
}

/// One cost measurement.
#[derive(Debug, Clone, Copy)]
pub struct CostPoint {
    /// Number of pieces inserted.
    pub pieces: usize,
    /// Slowdown fraction (0.1 = 10% slower).
    pub slowdown: f64,
    /// Bytes added by embedding.
    pub bytes_added: usize,
}

/// Figures 8(a) and 8(b): sweep the piece count, measuring slowdown and
/// size growth for both workloads with a 512-bit watermark.
pub fn cost_sweep(quick: bool) -> Vec<(&'static str, Vec<CostPoint>)> {
    let piece_counts: Vec<usize> = if quick {
        vec![0, 50, 150, 300]
    } else {
        vec![0, 50, 100, 150, 200, 250, 300, 350, 400, 450, 500]
    };
    let mut results = Vec::new();
    for w in both_workloads() {
        let key = setup::key(w.input.clone());
        let baseline = instructions_of(&w.program, &w.input);
        let base_bytes = w.program.byte_size();
        let mut points = Vec::new();
        for &pieces in &piece_counts {
            // The loop generator, whose per-piece cost Figure 8(b)
            // characterizes (the codegen trade-off is Ablation 3).
            let config = JavaConfig::for_watermark_bits(512)
                .with_pieces(pieces)
                .with_codegen(CodegenPolicy::LoopOnly);
            let watermark = Watermark::random_for(&config, &key);
            let marked = Embedder::builder(key.clone(), config)
                .build()
                .expect("builds")
                .embed(&w.program, &watermark)
                .expect("embeds");
            let cost = instructions_of(&marked.program, &w.input);
            points.push(CostPoint {
                pieces,
                slowdown: cost as f64 / baseline as f64 - 1.0,
                bytes_added: marked.program.byte_size() - base_bytes,
            });
        }
        results.push((w.name, points));
    }
    results
}

/// One resilience measurement for Figure 8(c).
#[derive(Debug, Clone, Copy)]
pub struct SurvivalPoint {
    /// Watermark width in bits.
    pub wm_bits: usize,
    /// Number of pieces inserted.
    pub pieces: usize,
    /// Largest surviving branch-insertion rate (fraction of the
    /// program's existing conditional branches added as bogus branches).
    pub survivable: f64,
}

/// Figure 8(c): for each watermark size and piece count, the largest
/// branch-insertion rate after which recognition still recovers `W`.
pub fn survival_sweep(quick: bool) -> Vec<SurvivalPoint> {
    let wm_sizes: &[usize] = if quick { &[128, 512] } else { &[128, 256, 512] };
    let piece_counts: Vec<usize> = if quick {
        vec![100, 300, 500]
    } else {
        vec![50, 100, 200, 300, 400, 500]
    };
    let rates: Vec<f64> = if quick {
        vec![0.25, 0.5, 1.0, 1.5]
    } else {
        vec![0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0]
    };
    // The Jess-like workload (the paper's Figure 8(c) is program-
    // agnostic; Jess keeps the attacked traces tractable).
    let program = workloads::jess_like();
    let input = vec![setup::JESS_INPUT / 10];
    let key = setup::key(input.clone());
    let mut out = Vec::new();
    for &bits in wm_sizes {
        for &pieces in &piece_counts {
            let config = JavaConfig::for_watermark_bits(bits).with_pieces(pieces);
            let watermark = Watermark::random_for(&config, &key);
            let embedder = Embedder::builder(key.clone(), config.clone())
                .build()
                .expect("builds");
            let recognizer = Recognizer::builder(key.clone(), config)
                .build()
                .expect("builds");
            let marked = embedder.embed(&program, &watermark).expect("embeds");
            let branches = marked.program.conditional_branch_count();
            let mut survivable = 0.0;
            for &rate in &rates {
                let mut attacked = marked.program.clone();
                attacks::insert_random_branches(
                    &mut attacked,
                    (branches as f64 * rate) as usize,
                    0xA77 ^ bits as u64 ^ pieces as u64,
                );
                let survived = recognizer
                    .recognize(&attacked)
                    .map(|r| r.watermark.as_ref() == Some(watermark.value()))
                    .unwrap_or(false);
                if survived {
                    survivable = rate;
                } else {
                    break;
                }
            }
            out.push(SurvivalPoint {
                wm_bits: bits,
                pieces,
                survivable,
            });
        }
    }
    out
}

/// Figure 8(d): cost of the branch-insertion *attack* itself — slowdown
/// versus the fraction of branches added, on both workloads.
pub fn attack_cost_sweep(quick: bool) -> Vec<(&'static str, Vec<(f64, f64)>)> {
    let rates: Vec<f64> = if quick {
        vec![0.5, 1.5, 3.0]
    } else {
        vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]
    };
    // Random insertion points give this attack high variance on small
    // programs; average several seeds per rate, as one would average
    // benchmark trials.
    let seeds: &[u64] = if quick { &[1, 2, 3] } else { &[1, 2, 3, 4, 5, 6, 7, 8] };
    let mut results = Vec::new();
    for w in both_workloads() {
        let baseline = instructions_of(&w.program, &w.input);
        let branches = w.program.conditional_branch_count();
        let mut points = Vec::new();
        for &rate in &rates {
            let mut total = 0.0;
            for &seed in seeds {
                let mut attacked = w.program.clone();
                attacks::insert_random_branches(
                    &mut attacked,
                    (branches as f64 * rate) as usize,
                    0xD0 ^ seed,
                );
                let cost = instructions_of(&attacked, &w.input);
                total += cost as f64 / baseline as f64 - 1.0;
            }
            points.push((rate, total / seeds.len() as f64));
        }
        results.push((w.name, points));
    }
    results
}

/// Renders Figures 8(a) through 8(d).
pub fn run(quick: bool) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 8(a,b): bytecode watermarking cost (512-bit watermark)\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>7} {:>12} {:>12}",
        "program", "pieces", "slowdown", "bytes added"
    );
    for (name, points) in cost_sweep(quick) {
        for p in points {
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>11.1}% {:>12}",
                name,
                p.pieces,
                p.slowdown * 100.0,
                p.bytes_added
            );
        }
    }
    let _ = writeln!(
        out,
        "\nFigure 8(c): survivable random branch insertion (jess workload)\n"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>7} {:>22}",
        "wm bits", "pieces", "survivable insertion"
    );
    for p in survival_sweep(quick) {
        let _ = writeln!(
            out,
            "{:>8} {:>7} {:>21.0}%",
            p.wm_bits,
            p.pieces,
            p.survivable * 100.0
        );
    }
    let _ = writeln!(
        out,
        "\nFigure 8(d): slowdown caused by the branch-insertion attack\n"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>15} {:>10}",
        "program", "branch increase", "slowdown"
    );
    for (name, points) in attack_cost_sweep(quick) {
        for (rate, slowdown) in points {
            let _ = writeln!(
                out,
                "{:<14} {:>14.0}% {:>9.1}%",
                name,
                rate * 100.0,
                slowdown * 100.0
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_cost_is_roughly_linear_in_pieces_and_app_independent() {
        // Figure 8(b)'s claims: fixed-ish cost plus a linear per-piece
        // cost, independent of application size.
        let sweep = cost_sweep(true);
        for (name, points) in &sweep {
            let p50 = points.iter().find(|p| p.pieces == 50).unwrap();
            let p300 = points.iter().find(|p| p.pieces == 300).unwrap();
            let per_piece_a = p50.bytes_added as f64 / 50.0;
            let per_piece_b = p300.bytes_added as f64 / 300.0;
            assert!(
                (per_piece_a / per_piece_b - 1.0).abs() < 0.5,
                "{name}: per-piece cost must be roughly constant ({per_piece_a:.0} vs {per_piece_b:.0})"
            );
        }
        // Application independence: per-piece byte costs within 2x
        // across programs.
        let a = sweep[0].1.last().unwrap().bytes_added as f64;
        let b = sweep[1].1.last().unwrap().bytes_added as f64;
        assert!(a / b < 2.0 && b / a < 2.0, "app-independent size cost");
    }

    #[test]
    fn jess_stays_fast_caffeine_does_not() {
        // Figure 8(a)'s headline contrast.
        let sweep = cost_sweep(true);
        let caffeine = &sweep[0];
        let jess = &sweep[1];
        assert_eq!(caffeine.0, "caffeinemark");
        let caffeine_max = caffeine
            .1
            .iter()
            .map(|p| p.slowdown)
            .fold(0.0f64, f64::max);
        let jess_max = jess.1.iter().map(|p| p.slowdown).fold(0.0f64, f64::max);
        assert!(
            jess_max < 0.15,
            "jess slowdown stays small, got {jess_max:.2}"
        );
        assert!(
            caffeine_max > jess_max * 2.0,
            "caffeinemark degrades much faster ({caffeine_max:.2} vs {jess_max:.2})"
        );
    }

    #[test]
    fn attack_slowdown_grows_with_rate() {
        for (name, points) in attack_cost_sweep(true) {
            assert!(
                points.last().unwrap().1 > points.first().unwrap().1,
                "{name}: more branches, more slowdown"
            );
        }
    }
}
