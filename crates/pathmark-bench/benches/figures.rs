//! Quick-mode regeneration of every figure and table of the paper's
//! evaluation (the full series live in `EXPERIMENTS.md`; run the
//! `fig5`/`fig8`/`fig9`/`tables` binaries without `--quick` for those).
fn main() {
    println!("=== Figure 5 (quick) ===\n{}", pathmark_bench::fig5::run(true));
    println!("=== Figure 8 (quick) ===\n{}", pathmark_bench::fig8::run(true));
    println!("=== Figure 9 (quick) ===\n{}", pathmark_bench::fig9::run(true));
    println!("=== Attack matrices (quick) ===\n{}", pathmark_bench::tables::run(true));
    println!("=== Ablations (quick) ===\n{}", pathmark_bench::ablations::run(true));
    println!("=== Fleet throughput (quick) ===\n{}", pathmark_bench::fleet::run(true));
}
