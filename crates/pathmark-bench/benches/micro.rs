//! Micro-benchmarks of the system's primitives: the cipher, the perfect
//! hash, big-integer CRT recombination, trace decoding, embedding,
//! recognition, and native extraction.
//!
//! Uses a small hand-rolled timing harness (median of several timed
//! batches over `std::time::Instant`) so the workspace stays free of
//! external benchmarking crates. Run with `cargo bench --bench micro`.

use std::hint::black_box;
use std::time::Instant;

use pathmark_core::bitstring::BitString;
use pathmark_core::java::{Embedder, JavaConfig, Recognizer};
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::native::{embed_native, extract, ExtractionSpec, NativeConfig, TracerKind};
use pathmark_crypto::{DisplacementHash, Prng, Xtea};
use pathmark_math::bigint::BigUint;
use pathmark_math::crt::combine_statements;
use pathmark_math::enumeration::PairEnumeration;
use pathmark_math::primes::generate_primes;
use stackvm::interp::Vm;
use stackvm::trace::TraceConfig;

/// Times `f`, auto-scaling the iteration count until one batch takes at
/// least ~20 ms, and reports the median per-iteration time of 5 batches.
fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 20 || iters >= 1 << 24 {
            break;
        }
        iters *= 4;
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let (value, unit) = if median >= 1e-3 {
        (median * 1e3, "ms")
    } else if median >= 1e-6 {
        (median * 1e6, "µs")
    } else {
        (median * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  ({iters} iters/batch)");
}

fn bench_crypto() {
    let cipher = Xtea::from_seed(1);
    let mut x = 0u64;
    bench("xtea_encrypt_block", || {
        x = cipher.encrypt(black_box(x));
        x
    });
    let keys: Vec<u32> = (0..513u32).map(|i| 0x0804_8000 + i * 11).collect();
    bench("phf_build_513_keys", || {
        DisplacementHash::build(black_box(&keys), 7).unwrap()
    });
    let hash = DisplacementHash::build(&keys, 7).unwrap();
    bench("phf_eval", || hash.eval(black_box(0x0804_9000)));
}

fn bench_math() {
    let primes = generate_primes(1, 24, 35);
    let e = PairEnumeration::new(&primes).unwrap();
    let mut rng = Prng::from_seed(2);
    let mut bytes = vec![0u8; 96];
    rng.fill_bytes(&mut bytes);
    let mut w = BigUint::from_bytes_le(&bytes);
    while w >= e.watermark_bound() {
        w = &w >> 1;
    }
    bench("split_768bit_watermark", || e.split(black_box(&w)));
    let pieces = e.split(&w);
    bench("gcrt_recombine_595_pieces", || {
        combine_statements(black_box(&pieces), &primes).unwrap()
    });
}

fn small_program() -> stackvm::Program {
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(25).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn bench_java() {
    let program = small_program();
    let key = WatermarkKey::new(3, vec![1]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(20);
    let watermark = Watermark::random_for(&config, &key);
    let embedder = Embedder::builder(key.clone(), config.clone()).build().unwrap();
    let recognizer = Recognizer::builder(key, config).build().unwrap();
    bench("java_embed_128bit_20pieces", || {
        embedder.embed(black_box(&program), &watermark).unwrap()
    });
    let marked = embedder.embed(&program, &watermark).unwrap().program;
    bench("java_recognize_128bit", || {
        recognizer.recognize(black_box(&marked)).unwrap()
    });
    bench("trace_and_decode_bitstring", || {
        let outcome = Vm::new(&marked)
            .with_input(vec![1])
            .with_trace(TraceConfig::branches_only())
            .run()
            .unwrap();
        BitString::from_trace(black_box(&outcome.trace))
    });
}

fn bench_native() {
    let w = pathmark_workloads::native::by_name("mcf").unwrap();
    let key = WatermarkKey::new(4, w.training_input.iter().map(|&v| v as i64).collect());
    let config = NativeConfig {
        training_inputs: vec![],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(5);
    let watermark = Watermark::random(64, &mut rng);
    bench("embed_64bit_into_mcf", || {
        embed_native(&w.image, &watermark.to_bits(), &key, &config).unwrap()
    });
    let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).unwrap();
    bench("extract_64bit_smart_tracer", || {
        extract(
            black_box(&mark.image),
            &key.native_input(),
            ExtractionSpec {
                begin: mark.begin,
                end: mark.end,
            },
            TracerKind::Smart,
            200_000_000,
        )
        .unwrap()
    });
}

fn main() {
    bench_crypto();
    bench_math();
    bench_java();
    bench_native();
}
