//! Criterion micro-benchmarks of the system's primitives: the cipher,
//! the perfect hash, big-integer CRT recombination, trace decoding,
//! embedding, recognition, and native extraction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use pathmark_core::bitstring::BitString;
use pathmark_core::java::{embed, recognize, JavaConfig};
use pathmark_core::key::{Watermark, WatermarkKey};
use pathmark_core::native::{embed_native, extract, ExtractionSpec, NativeConfig, TracerKind};
use pathmark_crypto::{DisplacementHash, Prng, Xtea};
use pathmark_math::bigint::BigUint;
use pathmark_math::crt::combine_statements;
use pathmark_math::enumeration::PairEnumeration;
use pathmark_math::primes::generate_primes;
use stackvm::interp::Vm;
use stackvm::trace::TraceConfig;

fn bench_crypto(c: &mut Criterion) {
    let cipher = Xtea::from_seed(1);
    c.bench_function("xtea_encrypt_block", |b| {
        let mut x = 0u64;
        b.iter(|| {
            x = cipher.encrypt(black_box(x));
            x
        })
    });
    let keys: Vec<u32> = (0..513u32).map(|i| 0x0804_8000 + i * 11).collect();
    c.bench_function("phf_build_513_keys", |b| {
        b.iter(|| DisplacementHash::build(black_box(&keys), 7).unwrap())
    });
    let hash = DisplacementHash::build(&keys, 7).unwrap();
    c.bench_function("phf_eval", |b| {
        b.iter(|| hash.eval(black_box(0x0804_9000)))
    });
}

fn bench_math(c: &mut Criterion) {
    let primes = generate_primes(1, 24, 35);
    let e = PairEnumeration::new(&primes).unwrap();
    let mut rng = Prng::from_seed(2);
    let mut bytes = vec![0u8; 96];
    rng.fill_bytes(&mut bytes);
    let mut w = BigUint::from_bytes_le(&bytes);
    while w >= e.watermark_bound() {
        w = &w >> 1;
    }
    c.bench_function("split_768bit_watermark", |b| {
        b.iter(|| e.split(black_box(&w)))
    });
    let pieces = e.split(&w);
    c.bench_function("gcrt_recombine_595_pieces", |b| {
        b.iter(|| combine_statements(black_box(&pieces), &primes).unwrap())
    });
}

fn small_program() -> stackvm::Program {
    use stackvm::builder::{FunctionBuilder, ProgramBuilder};
    use stackvm::insn::Cond;
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(25).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn bench_java(c: &mut Criterion) {
    let program = small_program();
    let key = WatermarkKey::new(3, vec![1]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(20);
    let watermark = Watermark::random_for(&config, &key);
    c.bench_function("java_embed_128bit_20pieces", |b| {
        b.iter(|| embed(black_box(&program), &watermark, &key, &config).unwrap())
    });
    let marked = embed(&program, &watermark, &key, &config).unwrap().program;
    c.bench_function("java_recognize_128bit", |b| {
        b.iter(|| recognize(black_box(&marked), &key, &config).unwrap())
    });
    c.bench_function("trace_and_decode_bitstring", |b| {
        b.iter(|| {
            let outcome = Vm::new(&marked)
                .with_input(vec![1])
                .with_trace(TraceConfig::branches_only())
                .run()
                .unwrap();
            BitString::from_trace(black_box(&outcome.trace))
        })
    });
}

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native");
    group.sample_size(10);
    let w = pathmark_workloads::native::by_name("mcf").unwrap();
    let key = WatermarkKey::new(4, w.training_input.iter().map(|&v| v as i64).collect());
    let config = NativeConfig {
        training_inputs: vec![],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(5);
    let watermark = Watermark::random(64, &mut rng);
    group.bench_function("embed_64bit_into_mcf", |b| {
        b.iter_batched(
            || w.image.clone(),
            |image| embed_native(&image, &watermark.to_bits(), &key, &config).unwrap(),
            BatchSize::LargeInput,
        )
    });
    let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).unwrap();
    group.bench_function("extract_64bit_smart_tracer", |b| {
        b.iter(|| {
            extract(
                black_box(&mark.image),
                &key.native_input(),
                ExtractionSpec {
                    begin: mark.begin,
                    end: mark.end,
                },
                TracerKind::Smart,
                200_000_000,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crypto, bench_math, bench_java, bench_native);
criterion_main!(benches);
