//! Branch-function watermarking of a native executable, with
//! tamper-proofing (the paper's Section 4).
//!
//! Embeds a 64-bit watermark into the `parser`-like SPEC stand-in,
//! extracts it with the single-stepping tracer, and then demonstrates
//! the Section 5.2.2 attack matrix live:
//!
//! * inserting a single no-op breaks the program (lock-down),
//! * bypassing the branch function breaks the program (its side
//!   effects were load-bearing),
//! * rerouting the calls defeats the *simple* tracer but not the
//!   *smart* one.
//!
//! Run with: `cargo run --release --example native_tamperproof`

use pathmark::attacks::native as attacks;
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::core::native::{
    embed_native, extract, ExtractionSpec, NativeConfig, TracerKind,
};
use pathmark::crypto::Prng;
use pathmark::sim::cpu::Machine;

const BUDGET: u64 = 100_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = pathmark::workloads::native::by_name("parser").expect("parser exists");
    let key = WatermarkKey::new(0x007A_3B11, vec![60]);
    let config = NativeConfig {
        training_inputs: vec![workload.reference_input.clone()],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(0xF1);
    let watermark = Watermark::random(64, &mut rng);
    let bits = watermark.to_bits();

    println!("== Embedding a 64-bit watermark into `{}` ==", workload.name);
    let mark = embed_native(&workload.image, &bits, &key, &config)?;
    println!(
        "  size {} -> {} bytes (+{:.1}%), {} call sites, {} lock-down cells",
        mark.size_before,
        mark.size_after,
        100.0 * (mark.size_after as f64 / mark.size_before as f64 - 1.0),
        mark.call_sites.len(),
        mark.tamper_cells,
    );
    let spec = ExtractionSpec {
        begin: mark.begin,
        end: mark.end,
    };

    // The marked binary still works.
    let baseline = Machine::load(&workload.image)
        .with_input(workload.reference_input.clone())
        .run(BUDGET)?;
    let marked_run = Machine::load(&mark.image)
        .with_input(workload.reference_input.clone())
        .run(BUDGET)?;
    assert_eq!(baseline.output, marked_run.output);
    println!(
        "  reference run OK, slowdown {:+.2}%",
        100.0 * (marked_run.instructions as f64 / baseline.instructions as f64 - 1.0)
    );

    // Extraction.
    let extracted = extract(
        &mark.image,
        &key.native_input(),
        spec,
        TracerKind::Smart,
        BUDGET,
    )?;
    let recovered = Watermark::from_bits(&extracted);
    println!("  extracted  W = {:x}", recovered.value());
    assert_eq!(recovered.value(), watermark.value());

    // ---- Attacks ---------------------------------------------------
    println!("\n== Attack: insert one no-op ==");
    let nopped = attacks::insert_nops(&mark.image, 1, 3)?;
    report_broken(&nopped, &workload.reference_input, &baseline.output);

    println!("\n== Attack: bypass the branch function with same-size jumps ==");
    let hops = attacks::discover_hops(&mark.image, &key.native_input(), BUDGET)?;
    println!("  attacker observed {} hops by tracing", hops.len());
    let bypassed = attacks::bypass_branch_function(&mark.image, &hops)?;
    report_broken(&bypassed, &workload.reference_input, &baseline.output);

    println!("\n== Attack: reroute calls through thunks ==");
    let call_sites: Vec<u32> = hops.iter().map(|h| h.call_site).collect();
    let rerouted = attacks::reroute_calls(&mark.image, &call_sites)?;
    let rerouted_run = Machine::load(&rerouted)
        .with_input(workload.reference_input.clone())
        .run(BUDGET)?;
    assert_eq!(rerouted_run.output, baseline.output);
    println!("  rerouted binary still works (hash inputs unchanged)");
    let simple = extract(
        &rerouted,
        &key.native_input(),
        spec,
        TracerKind::Simple,
        BUDGET,
    );
    let simple_ok = matches!(&simple, Ok(bits) if *bits == watermark.to_bits());
    println!(
        "  simple tracer: {}",
        if simple_ok { "recovered (?!)" } else { "DEFEATED" }
    );
    let smart = extract(
        &rerouted,
        &key.native_input(),
        spec,
        TracerKind::Smart,
        BUDGET,
    )?;
    assert_eq!(Watermark::from_bits(&smart).value(), watermark.value());
    println!("  smart tracer:  recovered W = {:x}", Watermark::from_bits(&smart).value());
    Ok(())
}

fn report_broken(image: &pathmark::sim::Image, input: &[u32], expected: &[u32]) {
    match Machine::load(image).with_input(input.to_vec()).run(BUDGET) {
        Err(e) => println!("  program BROKE: {e}"),
        Ok(out) if out.output != expected => {
            println!("  program produced WRONG OUTPUT ({:?})", out.output)
        }
        Ok(_) => println!("  program survived (unexpected!)"),
    }
}
