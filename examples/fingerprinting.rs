//! Fingerprinting a distributed population.
//!
//! Path-based watermarking is a *fingerprinting* scheme: every
//! distributed copy carries a distinct integer, so a leaked copy can be
//! traced back to its licensee. This example stamps three copies of the
//! CaffeineMark-like workload with different 128-bit fingerprints,
//! subjects one "pirated" copy to a semantics-preserving attack
//! cocktail, and still identifies the leaker.
//!
//! Run with: `cargo run --release --example fingerprinting`

use pathmark::attacks::java as attacks;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::crypto::Prng;
use pathmark::vm::interp::Vm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let product = pathmark::workloads::java::caffeinemark();
    let key = WatermarkKey::new(0x5EC2_E71D, vec![10]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(40);
    let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
    let recognizer = Recognizer::builder(key, config).build()?;

    // Stamp three licensees.
    let licensees = ["alice", "bob", "carol"];
    let mut rng = Prng::from_seed(42);
    let mut copies = Vec::new();
    println!("== Stamping {} copies ==", licensees.len());
    for name in licensees {
        let fingerprint = Watermark::random(128, &mut rng);
        let marked = embedder.embed(&product, &fingerprint)?;
        println!(
            "  {name}: W = {:x}  (+{} bytes, {} pieces)",
            fingerprint.value(),
            marked.report.bytes_after - marked.report.bytes_before,
            marked.report.pieces.len()
        );
        copies.push((name, fingerprint, marked.program));
    }

    // All copies behave identically.
    let reference = Vm::new(&product).with_input(vec![10]).run()?;
    for (name, _, program) in &copies {
        let out = Vm::new(program).with_input(vec![10]).run()?;
        assert_eq!(out.output, reference.output, "{name}'s copy must work");
    }
    println!("  all copies produce identical output\n");

    // Bob leaks his copy after "laundering" it through an obfuscator.
    println!("== A pirated copy surfaces (attacked before release) ==");
    let mut pirated = copies[1].2.clone();
    attacks::insert_nops(&mut pirated, 200, 7);
    attacks::invert_branch_senses(&mut pirated, 0.8, 8);
    attacks::reorder_blocks(&mut pirated, 9);
    attacks::split_blocks(&mut pirated, 40, 10);
    let out = Vm::new(&pirated).with_input(vec![10]).run()?;
    assert_eq!(out.output, reference.output, "attack preserved semantics");
    println!("  attacked copy still works (semantics-preserving attacks)");

    // Recognition traces the leak.
    let found = recognizer.recognize(&pirated)?;
    match &found.watermark {
        Some(value) => {
            let culprit = copies
                .iter()
                .find(|(_, w, _)| w.value() == value)
                .map(|(n, _, _)| *n)
                .unwrap_or("<unknown>");
            println!("  recovered fingerprint {value:x}");
            println!("  the leaker is: {culprit}");
            assert_eq!(culprit, "bob");
        }
        None => {
            println!("  fingerprint destroyed — attack won this round");
            std::process::exit(1);
        }
    }
    Ok(())
}
