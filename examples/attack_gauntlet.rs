//! The distortive-attack gauntlet (the paper's Section 5.1.2).
//!
//! Marks the Jess-like workload with a 256-bit watermark, then runs the
//! bytecode attack suite against it, reporting for each attack whether
//! the program still works and whether the watermark survives —
//! including the two attacks the paper singles out: heavy random branch
//! insertion (kills the mark at a steep performance price) and class
//! encryption (denies instrumentation, countered by runtime tracing).
//!
//! Run with: `cargo run --release --example attack_gauntlet`

use pathmark::attacks::java as attacks;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::vm::interp::Vm;
use pathmark::vm::Program;

/// An attack that produces a transformed copy of the marked program.
type BoxedAttack = Box<dyn Fn(&Program) -> Program>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let key = WatermarkKey::new(0xA77AC4, vec![40]);
    let config = JavaConfig::for_watermark_bits(256).with_pieces(80);
    let watermark = Watermark::random_for(&config, &key);
    let product = pathmark::workloads::java::jess_like();
    let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
    let recognizer = Recognizer::builder(key, config).build()?;
    let marked = embedder.embed(&product, &watermark)?.program;
    let expected = Vm::new(&product).with_input(vec![40]).run()?.output;

    println!("{:<28} {:>9} {:>10}", "attack", "runs?", "mark?");
    println!("{}", "-".repeat(50));

    let mut gauntlet: Vec<(&str, BoxedAttack)> = Vec::new();
    gauntlet.push((
        "no-op insertion (500)",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::insert_nops(&mut q, 500, 1);
            q
        }),
    ));
    gauntlet.push((
        "branch sense inversion",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::invert_branch_senses(&mut q, 1.0, 2);
            q
        }),
    ));
    gauntlet.push((
        "block reordering",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::reorder_blocks(&mut q, 3);
            q
        }),
    ));
    gauntlet.push((
        "block splitting (200)",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::split_blocks(&mut q, 200, 4);
            q
        }),
    ));
    gauntlet.push((
        "block copying (50)",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::copy_blocks(&mut q, 50, 5);
            q
        }),
    ));
    gauntlet.push((
        "light branch insertion",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::insert_random_branches(&mut q, 60, 6);
            q
        }),
    ));
    gauntlet.push((
        "HEAVY branch insertion",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            let heavy = q.conditional_branch_count() * 3;
            attacks::insert_random_branches(&mut q, heavy, 7);
            q
        }),
    ));
    gauntlet.push((
        "everything stacked",
        Box::new(|p: &Program| {
            let mut q = p.clone();
            attacks::insert_nops(&mut q, 300, 8);
            attacks::invert_branch_senses(&mut q, 0.5, 9);
            attacks::reorder_blocks(&mut q, 10);
            q
        }),
    ));

    for (name, attack) in &gauntlet {
        let attacked = attack(&marked);
        let runs = Vm::new(&attacked)
            .with_input(vec![40])
            .run()
            .map(|o| o.output == expected)
            .unwrap_or(false);
        let survives = recognizer
            .recognize(&attacked)
            .map(|r| r.watermark.as_ref() == Some(watermark.value()))
            .unwrap_or(false);
        println!(
            "{:<28} {:>9} {:>10}",
            name,
            if runs { "yes" } else { "NO" },
            if survives { "survives" } else { "DESTROYED" }
        );
    }

    // Class encryption: semantics preserved, bytecode instrumentation
    // denied — but runtime tracing sees the decrypted code.
    let encrypted = attacks::EncryptedProgram::encrypt(&marked, 0xBEEF);
    let runs = encrypted
        .run(vec![40])
        .map(|o| o.output == expected)
        .unwrap_or(false);
    let via_stub = recognizer
        .recognize(encrypted.stub())
        .map(|r| r.watermark.is_some())
        .unwrap_or(false);
    println!(
        "{:<28} {:>9} {:>10}",
        "class encryption",
        if runs { "yes" } else { "NO" },
        if via_stub { "survives" } else { "DESTROYED" }
    );
    let via_runtime = encrypted
        .decrypt_for_runtime_tracing()
        .map(|p| {
            recognizer
                .recognize(&p)
                .map(|r| r.watermark.as_ref() == Some(watermark.value()))
                .unwrap_or(false)
        })
        .unwrap_or(false);
    println!(
        "{:<28} {:>9} {:>10}",
        "  … traced via runtime",
        "yes",
        if via_runtime { "survives" } else { "DESTROYED" }
    );
    Ok(())
}
