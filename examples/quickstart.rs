//! Quickstart: the whole pipeline on one page.
//!
//! 1. Split/recombine a watermark with the Generalized CRT — the exact
//!    worked example of the paper's Figures 3 and 4 (`W = 17`,
//!    `p = {2, 3, 5}`).
//! 2. Embed a 64-bit fingerprint into a small bytecode program, show the
//!    trace bit-string grows, and recognize the mark.
//!
//! Run with: `cargo run --example quickstart`

use pathmark::core::bitstring::BitString;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::math::bigint::BigUint;
use pathmark::math::crt::combine_statements;
use pathmark::math::enumeration::PairEnumeration;
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::insn::Cond;
use pathmark::vm::interp::Vm;
use pathmark::vm::trace::TraceConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: the paper's Figure 3/4 example -------------------
    println!("== Splitting W = 17 over p = {{2, 3, 5}} (paper Figs. 3-4) ==");
    let primes = vec![2u64, 3, 5];
    let enumeration = PairEnumeration::new(&primes)?;
    let w = BigUint::from(17u64);
    let pieces = enumeration.split(&w);
    for s in &pieces {
        println!(
            "  W = {} mod {}  (p{}·p{})",
            s.x,
            s.modulus(&primes),
            s.i + 1,
            s.j + 1
        );
    }
    let (recovered, modulus) = combine_statements(&pieces, &primes)?;
    println!("  recombined: W = {recovered} (mod {modulus})\n");
    assert_eq!(recovered, w);

    // ---- Part 2: embed + recognize in bytecode --------------------
    println!("== Watermarking a gcd program ==");
    let program = gcd_program()?;
    let key = WatermarkKey::new(0xC0FFEE, vec![252, 105]);
    let config = JavaConfig::for_watermark_bits(64).with_pieces(16);
    let watermark = Watermark::random_for(&config, &key);
    println!("  watermark W = {:x} ({} bits)", watermark.value(), watermark.bits());

    let baseline = Vm::new(&program)
        .with_input(key.input.clone())
        .with_trace(TraceConfig::branches_only())
        .run()?;
    println!(
        "  before: {} bytes, trace bit-string {} bits, output {:?}",
        program.byte_size(),
        BitString::from_trace(&baseline.trace).len(),
        baseline.output
    );

    let embedder = Embedder::builder(key.clone(), config.clone()).build()?;
    let recognizer = Recognizer::builder(key.clone(), config.clone()).build()?;
    let marked = embedder.embed(&program, &watermark)?;
    let after = Vm::new(&marked.program)
        .with_input(key.input.clone())
        .with_trace(TraceConfig::branches_only())
        .run()?;
    println!(
        "  after:  {} bytes, trace bit-string {} bits, output {:?}",
        marked.program.byte_size(),
        BitString::from_trace(&after.trace).len(),
        after.output
    );
    assert_eq!(baseline.output, after.output, "semantics preserved");

    let found = recognizer.recognize(&marked.program)?;
    println!(
        "  recognition: {} candidate statements, {} after voting, {} survivors",
        found.candidates, found.after_vote, found.survivors
    );
    match &found.watermark {
        Some(value) => println!("  recovered W = {value:x}"),
        None => println!("  recovery FAILED"),
    }
    assert_eq!(found.watermark.as_ref(), Some(watermark.value()));

    // A recognizer with the wrong key sees nothing.
    let wrong_key = WatermarkKey::new(0xBAD_5EED, vec![252, 105]);
    let nothing = recognizer.with_key(wrong_key).recognize(&marked.program)?;
    println!(
        "  wrong key: recovered = {:?} (as it should be)",
        nothing.watermark.as_ref().map(|v| format!("{v:x}"))
    );
    Ok(())
}

/// `print(gcd(I_0, I_1))` — the program of the paper's Figure 2.
fn gcd_program() -> Result<pathmark::vm::Program, pathmark::vm::VmError> {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    f.read_input().store(0).read_input().store(1);
    let head = f.new_label();
    let done = f.new_label();
    f.bind(head);
    f.load(1).if_zero(Cond::Eq, done);
    f.load(1).load(0).load(1).rem().store(1).store(0);
    f.goto(head);
    f.bind(done);
    f.load(0).print().ret_void();
    let main = pb.add_function(f.finish()?);
    pb.finish(main)
}
