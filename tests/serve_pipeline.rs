//! End-to-end tests for the resident daemon: protocol robustness,
//! serve-vs-batch bit-identity, multi-tenant decode-cache isolation,
//! admission-control shedding, and crash-safe resume.
//!
//! Everything runs in-process against [`Server`] with an in-memory
//! response writer; the kill -9 crash state is constructed on disk the
//! way a dead daemon leaves it (intents + `.partial` sidecars, torn
//! trailing lines included). The real-process kill -9 path is exercised
//! by the CI smoke gate in `scripts/ci.sh`.

use std::io::{Cursor, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::WatermarkKey;
use pathmark::fleet::batch::{embed_batch, recognize_batch, RecognizeJob};
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::json::parse_object;
use pathmark::fleet::manifest::{parse_report, EmbedJobSpec, JobReport};
use pathmark::fleet::pool::WorkerPool;
use pathmark::serve::protocol::{EmbedRequest, OpenRequest, RecognizeRequest};
use pathmark::serve::{shared_writer, ServeOptions, Server};
use pathmark::telemetry::{Counter, MemorySink, Telemetry};
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::codec::encode_program;
use pathmark::vm::insn::Cond;
use pathmark::vm::Program;

const SEED: u64 = 0xF1E7_CAFE;

/// The same small looped host the fleet pipeline tests use.
fn host_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(12).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn serve_key() -> WatermarkKey {
    WatermarkKey::new(SEED, vec![3, 1, 4])
}

fn serve_config() -> JavaConfig {
    JavaConfig::for_watermark_bits(64).with_pieces(12)
}

fn open_line(tenant: &str) -> String {
    OpenRequest {
        tenant: tenant.to_string(),
        seed: SEED,
        input: vec![3, 1, 4],
        bits: 64,
        pieces: Some(12),
        cache_cap: None,
    }
    .to_line()
}

fn embed_line(tenant: &str, job_id: &str, host: &str, out_dir: &str) -> String {
    EmbedRequest {
        tenant: tenant.to_string(),
        spec: EmbedJobSpec::new(job_id),
        host: host.to_string(),
        out_dir: out_dir.to_string(),
    }
    .to_line()
}

fn recognize_line(tenant: &str, spec: EmbedJobSpec, program: &str) -> String {
    RecognizeRequest {
        tenant: tenant.to_string(),
        spec,
        program: program.to_string(),
    }
    .to_line()
}

/// An in-memory response writer the test can read back as lines.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Capture {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn field(line: &str, name: &str) -> String {
        let fields = parse_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        match fields.get(name) {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .or_else(|| v.as_u64().map(|n| n.to_string()))
                .unwrap(),
            None => panic!("no `{name}` in {line}"),
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathmark-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_host(dir: &std::path::Path) -> String {
    let path = dir.join("host.pmvm");
    std::fs::write(&path, encode_program(&host_program())).unwrap();
    path.to_str().unwrap().to_string()
}

/// Feeds request lines to the server, returning the responses produced
/// by this batch (EOF drains the gate, so every accepted job answers).
fn drive(server: &Server, capture: &Capture, lines: &[String]) -> Vec<String> {
    let before = capture.lines().len();
    let input = lines.join("\n");
    let out = shared_writer(Box::new(capture.clone()));
    server
        .serve_lines(Cursor::new(input.into_bytes()), &out)
        .unwrap();
    capture.lines()[before..].to_vec()
}

/// Report lines with `wall_ms` zeroed — the one nondeterministic field.
fn normalized_lines(reports: &[JobReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.wall_ms = 0;
            r.to_line()
        })
        .collect()
}

#[test]
fn malformed_lines_get_structured_errors_and_the_daemon_survives() {
    let dir = temp_dir("robust");
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let responses = drive(
        &server,
        &capture,
        &[
            "this is not json".to_string(),
            "{\"op\":\"teleport\"}".to_string(),
            "{\"op\":\"embed\"}".to_string(),
            recognize_line("ghost", EmbedJobSpec::new("j"), "nowhere.pmvm"),
            "{\"op\":\"ping\"}".to_string(),
            "{\"op\":\"shutdown\"}".to_string(),
        ],
    );
    assert_eq!(responses.len(), 6, "one response per line: {responses:?}");
    for bad in &responses[..4] {
        assert_eq!(Capture::field(bad, "op"), "error", "{bad}");
        assert!(
            Capture::field(bad, "status").starts_with("failed: "),
            "{bad}"
        );
    }
    // The daemon outlived every defect: the probe and the clean
    // shutdown both answer.
    assert_eq!(Capture::field(&responses[4], "op"), "ping");
    assert_eq!(Capture::field(&responses[4], "status"), "ok");
    assert_eq!(Capture::field(&responses[5], "op"), "shutdown");
    assert_eq!(Capture::field(&responses[5], "status"), "ok");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_reports_and_copies_are_bit_identical_to_batch() {
    let dir = temp_dir("bitident");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..5)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: the batch engine over the same manifest.
    let embedder = Embedder::builder(serve_key(), serve_config()).build().unwrap();
    let recognizer = Recognizer::builder(serve_key(), serve_config()).build().unwrap();
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let batch_embeds = embed_batch(&host_program(), &embedder, &jobs, &pool, &cache).unwrap();
    let rec_jobs: Vec<RecognizeJob> = batch_embeds
        .iter()
        .map(|o| RecognizeJob::try_from(o).unwrap())
        .collect();
    let batch_recs = recognize_batch(&rec_jobs, &recognizer, &pool);

    // The daemon, fed the manifest over the wire.
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let embeds: Vec<String> = jobs
        .iter()
        .map(|j| embed_line("acme", &j.job_id, &host_path, &marked_dir))
        .collect();
    let mut batch1 = vec![open_line("acme")];
    batch1.extend(embeds);
    drive(&server, &capture, &batch1);
    // The EOF drain settled every embed, so the marked copies are on
    // disk and recognizable.
    let mut batch2: Vec<String> = jobs
        .iter()
        .map(|j| {
            recognize_line(
                "acme",
                j.clone(),
                &format!("{marked_dir}/{}.pmvm", j.job_id),
            )
        })
        .collect();
    batch2.push("{\"op\":\"shutdown\"}".to_string());
    drive(&server, &capture, &batch2);

    // Finalized serve reports equal batch reports, modulo wall_ms.
    let prefix = dir.join("journal/serve");
    let serve_embeds = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    let serve_recs = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.recognize.jsonl")).unwrap(),
    )
    .unwrap();
    let batch_embed_reports: Vec<JobReport> =
        batch_embeds.iter().map(|o| o.report.clone()).collect();
    let batch_rec_reports: Vec<JobReport> = batch_recs.iter().map(|o| o.report.clone()).collect();
    assert_eq!(normalized_lines(&serve_embeds), normalized_lines(&batch_embed_reports));
    assert_eq!(normalized_lines(&serve_recs), normalized_lines(&batch_rec_reports));
    assert!(serve_recs.iter().all(|r| r.status.is_ok()));

    // And the marked programs themselves are byte-identical.
    for (job, outcome) in jobs.iter().zip(&batch_embeds) {
        let served = std::fs::read(format!("{marked_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(
            served,
            encode_program(outcome.marked.as_ref().unwrap()),
            "{}",
            job.job_id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_never_share_decode_cache_entries() {
    let dir = temp_dir("isolation");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let sink = Arc::new(MemorySink::new());
    let mut options = ServeOptions::new(dir.join("journal/serve"));
    options.telemetry = Telemetry::new(sink.clone());
    let server = Server::new(options).unwrap();
    let capture = Capture::default();

    // Tenant A embeds one copy, then recognizes it: the scan decrypts
    // windows and fills A's decode cache.
    let copy = format!("{marked_dir}/copy-000.pmvm");
    drive(
        &server,
        &capture,
        &[
            open_line("tenant-a"),
            embed_line("tenant-a", "copy-000", &host_path, &marked_dir),
        ],
    );
    drive(
        &server,
        &capture,
        &[recognize_line("tenant-a", EmbedJobSpec::new("copy-000"), &copy)],
    );
    let after_first = sink.counter(Counter::WindowsDecrypted);
    assert!(after_first > 0, "the first scan decrypts windows");

    // The same copy again under A (fresh job_id, same per-copy seed):
    // the warm per-copy session answers every window from its decode
    // cache — zero new decrypts.
    let warm_spec = EmbedJobSpec {
        job_id: "copy-000-again".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    let responses = drive(
        &server,
        &capture,
        &[recognize_line("tenant-a", warm_spec, &copy)],
    );
    assert_eq!(Capture::field(&responses[0], "status"), "ok");
    assert_eq!(
        sink.counter(Counter::WindowsDecrypted),
        after_first,
        "a warm tenant re-scan decrypts nothing"
    );
    assert!(sink.counter(Counter::SessionHit) >= 1, "the warm session was reused");

    // Tenant B opens the *same key material* under its own handle.
    // Reusing A's job_id is refused outright — answering B from A's
    // journaled outcome would leak results across tenants.
    let responses = drive(
        &server,
        &capture,
        &[
            open_line("tenant-b"),
            recognize_line("tenant-b", EmbedJobSpec::new("copy-000"), &copy),
        ],
    );
    assert_eq!(Capture::field(&responses[1], "op"), "error");
    assert!(
        Capture::field(&responses[1], "status").contains("belongs to tenant `tenant-a`"),
        "{}",
        responses[1]
    );

    // B scans the same copy under its own job id: if tenants shared
    // decode-cache entries this would decrypt nothing — isolation means
    // B pays full price even for identical key material.
    let b_spec = EmbedJobSpec {
        job_id: "b-scan".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    let responses = drive(
        &server,
        &capture,
        &[recognize_line("tenant-b", b_spec, &copy)],
    );
    assert_eq!(Capture::field(&responses[0], "status"), "ok");
    assert!(
        sink.counter(Counter::WindowsDecrypted) > after_first,
        "tenant B's scan does its own decode work: no cross-tenant sharing"
    );
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_surface_decode_cache_behavior() {
    let dir = temp_dir("cachestats");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let copy = format!("{marked_dir}/copy-000.pmvm");

    let stat = |responses: &[String]| -> Vec<u64> {
        let line = responses
            .iter()
            .find(|r| Capture::field(r, "op") == "stats")
            .unwrap();
        [
            "decode_cache_hits",
            "decode_cache_misses",
            "decode_cache_evictions",
            "decode_cache_entries",
        ]
        .iter()
        .map(|f| Capture::field(line, f).parse::<u64>().unwrap())
        .collect()
    };

    // Before any scan: every decode-cache number is zero.
    let responses = drive(
        &server,
        &capture,
        &[
            open_line("acme"),
            "{\"op\":\"stats\"}".to_string(),
            embed_line("acme", "copy-000", &host_path, &marked_dir),
        ],
    );
    assert_eq!(stat(&responses), vec![0, 0, 0, 0]);

    // One recognize fills the warm session's cache: misses and resident
    // entries appear in the stats response. Stats are requested on a
    // separate connection — within one batch the daemon answers `stats`
    // before queued scans settle.
    drive(
        &server,
        &capture,
        &[recognize_line("acme", EmbedJobSpec::new("copy-000"), &copy)],
    );
    let responses = drive(&server, &capture, &["{\"op\":\"stats\"}".to_string()]);
    let after_first = stat(&responses);
    assert!(after_first[1] > 0, "first scan misses: {after_first:?}");
    assert!(after_first[3] > 0, "decodes stay resident: {after_first:?}");

    // Re-scanning the same copy under the warm session hits the cache;
    // misses stay flat.
    let warm_spec = EmbedJobSpec {
        job_id: "copy-000-again".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    drive(&server, &capture, &[recognize_line("acme", warm_spec, &copy)]);
    let responses = drive(&server, &capture, &["{\"op\":\"stats\"}".to_string()]);
    let after_second = stat(&responses);
    assert!(
        after_second[0] > after_first[0],
        "warm re-scan hits the cache: {after_second:?}"
    );
    assert_eq!(
        after_second[1], after_first[1],
        "warm re-scan adds no misses: {after_second:?}"
    );
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_a_distinct_status_and_resubmission_completes() {
    let dir = temp_dir("shed");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let mut options = ServeOptions::new(dir.join("journal/serve"));
    options.workers = 1;
    options.max_inflight = 1;
    let server = Server::new(options).unwrap();
    let capture = Capture::default();

    let jobs: Vec<String> = (0..6)
        .map(|i| embed_line("acme", &format!("copy-{i:03}"), &host_path, &marked_dir))
        .collect();
    let mut batch = vec![open_line("acme")];
    batch.extend(jobs.clone());
    let responses = drive(&server, &capture, &batch);
    let shed: Vec<&String> = responses[1..]
        .iter()
        .filter(|r| Capture::field(r, "status") == "shed")
        .collect();
    let fresh = responses[1..]
        .iter()
        .filter(|r| parse_object(r).unwrap().contains_key("disposition"))
        .count();
    assert_eq!(shed.len() + fresh, 6, "every job answered: {responses:?}");
    assert!(!shed.is_empty(), "a 1-deep gate sheds a 6-job burst");
    assert!(fresh >= 1, "the admitted job completes");
    for line in &shed {
        assert!(
            parse_object(line).unwrap().contains_key("job_id"),
            "shed responses name the job so clients can resubmit: {line}"
        );
    }

    // Shed means *not accepted*: backing off and resubmitting the same
    // lines runs the shed jobs and answers the settled ones from the
    // journal. A resubmitted burst can shed again, so clients loop.
    let mut total_shed = shed.len();
    loop {
        let responses = drive(&server, &capture, &jobs);
        let sheds = responses
            .iter()
            .filter(|r| Capture::field(r, "status") == "shed")
            .count();
        total_shed += sheds;
        if sheds == 0 {
            break;
        }
    }
    let responses = drive(
        &server,
        &capture,
        &["{\"op\":\"stats\"}".to_string(), "{\"op\":\"shutdown\"}".to_string()],
    );
    let stats = responses
        .iter()
        .find(|r| Capture::field(r, "op") == "stats")
        .unwrap();
    assert_eq!(
        Capture::field(stats, "shed").parse::<usize>().unwrap(),
        total_shed
    );
    assert!(Capture::field(stats, "resumed").parse::<u64>().unwrap() >= 1);

    let report = parse_report(
        &std::fs::read_to_string(dir.join("journal/serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(report.len(), 6, "all six jobs eventually settled");
    assert!(report.iter().all(|r| r.status.is_ok()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crashed_daemon_resumes_to_a_bit_identical_report() {
    let dir = temp_dir("crash");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..4)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: one uninterrupted daemon runs all four jobs.
    let ref_dir = dir.join("marked-ref").to_str().unwrap().to_string();
    {
        let server = Server::new(ServeOptions::new(dir.join("ref/serve"))).unwrap();
        let capture = Capture::default();
        let mut batch = vec![open_line("acme")];
        batch.extend(jobs.iter().map(|j| embed_line("acme", &j.job_id, &host_path, &ref_dir)));
        batch.push("{\"op\":\"shutdown\"}".to_string());
        drive(&server, &capture, &batch);
    }
    let reference = parse_report(
        &std::fs::read_to_string(dir.join("ref/serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(reference.len(), 4);

    // The crash: a daemon accepts and settles three jobs, then dies
    // without finalizing (dropped mid-service). The fourth job was
    // accepted — its intent is journaled — but never ran, and the kill
    // tears a trailing line in both the intents file and the outcome
    // sidecar.
    let crash_dir = dir.join("marked-crash").to_str().unwrap().to_string();
    let prefix = dir.join("crash/serve");
    {
        let server = Server::new(ServeOptions::new(&prefix)).unwrap();
        let capture = Capture::default();
        let mut batch = vec![open_line("acme")];
        batch.extend(
            jobs[..3]
                .iter()
                .map(|j| embed_line("acme", &j.job_id, &host_path, &crash_dir)),
        );
        drive(&server, &capture, &batch);
        // No shutdown, no finish: dropping the server is the crash.
    }
    let intents = prefix.with_file_name("serve.intents.jsonl");
    let mut text = std::fs::read_to_string(&intents).unwrap();
    text.push_str(&embed_line("acme", "copy-003", &host_path, &crash_dir));
    text.push('\n');
    text.push_str("{\"op\":\"embed\",\"tenant\":\"acme\",\"job_id\":\"to");
    std::fs::write(&intents, &text).unwrap();
    let sidecar = prefix.with_file_name("serve.embed.jsonl.partial");
    let mut text = std::fs::read_to_string(&sidecar).unwrap();
    text.push_str("{\"job_id\":\"copy-0");
    std::fs::write(&sidecar, &text).unwrap();

    // Restart with --resume: the journal replay rebuilds the tenant and
    // runs the pending fourth job before the first client line; the
    // client then resubmits everything (at-least-once) and every answer
    // comes from the journal.
    let mut options = ServeOptions::new(&prefix);
    options.resume = true;
    let server = Server::new(options).unwrap();
    let capture = Capture::default();
    let mut batch = vec![open_line("acme")];
    batch.extend(jobs.iter().map(|j| embed_line("acme", &j.job_id, &host_path, &crash_dir)));
    batch.push("{\"op\":\"shutdown\"}".to_string());
    let responses = drive(&server, &capture, &batch);
    for line in &responses[1..5] {
        assert_eq!(
            Capture::field(line, "disposition"),
            "resumed",
            "a resubmitted settled job is answered from the journal: {line}"
        );
    }

    // The resumed daemon's finalized report is line-for-line the
    // uninterrupted daemon's report, and the marked copies match bytes.
    let resumed = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(normalized_lines(&resumed), normalized_lines(&reference));
    assert!(
        !intents.exists(),
        "finalize retires the intents file on the resumed run too"
    );
    for job in &jobs {
        let reference = std::fs::read(format!("{ref_dir}/{}.pmvm", job.job_id)).unwrap();
        let crashed = std::fs::read(format!("{crash_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(reference, crashed, "{}", job.job_id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}
