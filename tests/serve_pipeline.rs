//! End-to-end tests for the resident daemon: protocol robustness,
//! serve-vs-batch bit-identity, multi-tenant decode-cache isolation,
//! admission-control shedding (capacity and per-tenant fairness),
//! concurrent connections, journal rotation, and crash-safe resume.
//!
//! Most tests run in-process against [`Server`] with an in-memory
//! response writer — concurrent connections are scoped threads calling
//! `serve_lines`, which is exactly what the socket accept loop runs per
//! connection; the kill -9 crash state is constructed on disk the way a
//! dead daemon leaves it (intents + `.partial` sidecars, torn trailing
//! lines included). The stalled-client and stale-socket tests drive a
//! real `serve_unix` daemon over a socket; the real-process kill -9
//! path (including two live connections at kill time) is exercised by
//! the CI smoke gate in `scripts/ci.sh`.

use std::io::{BufRead, BufReader, Cursor, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::WatermarkKey;
use pathmark::fleet::batch::{embed_batch, recognize_batch, RecognizeJob};
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::json::parse_object;
use pathmark::fleet::manifest::{parse_report, EmbedJobSpec, JobReport};
use pathmark::fleet::pool::WorkerPool;
use pathmark::serve::protocol::{EmbedRequest, OpenRequest, RecognizeRequest};
use pathmark::serve::{shared_writer, ServeOptions, Server};
use pathmark::telemetry::{Counter, MemorySink, Telemetry};
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::codec::encode_program;
use pathmark::vm::insn::Cond;
use pathmark::vm::Program;

const SEED: u64 = 0xF1E7_CAFE;

/// The same small looped host the fleet pipeline tests use.
fn host_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(12).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn serve_key() -> WatermarkKey {
    WatermarkKey::new(SEED, vec![3, 1, 4])
}

fn serve_config() -> JavaConfig {
    JavaConfig::for_watermark_bits(64).with_pieces(12)
}

fn open_line(tenant: &str) -> String {
    OpenRequest {
        tenant: tenant.to_string(),
        seed: SEED,
        input: vec![3, 1, 4],
        bits: 64,
        pieces: Some(12),
        cache_cap: None,
        tier: None,
        scan_mode: None,
    }
    .to_line()
}

fn embed_line(tenant: &str, job_id: &str, host: &str, out_dir: &str) -> String {
    EmbedRequest {
        tenant: tenant.to_string(),
        spec: EmbedJobSpec::new(job_id),
        host: host.to_string(),
        out_dir: out_dir.to_string(),
    }
    .to_line()
}

fn recognize_line(tenant: &str, spec: EmbedJobSpec, program: &str) -> String {
    RecognizeRequest {
        tenant: tenant.to_string(),
        spec,
        program: program.to_string(),
    }
    .to_line()
}

/// An in-memory response writer the test can read back as lines.
#[derive(Clone, Default)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Capture {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn field(line: &str, name: &str) -> String {
        let fields = parse_object(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        match fields.get(name) {
            Some(v) => v
                .as_str()
                .map(str::to_string)
                .or_else(|| v.as_u64().map(|n| n.to_string()))
                .unwrap(),
            None => panic!("no `{name}` in {line}"),
        }
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathmark-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_host(dir: &std::path::Path) -> String {
    let path = dir.join("host.pmvm");
    std::fs::write(&path, encode_program(&host_program())).unwrap();
    path.to_str().unwrap().to_string()
}

/// Feeds request lines to the server, returning the responses produced
/// by this batch (EOF drains the gate, so every accepted job answers).
fn drive(server: &Server, capture: &Capture, lines: &[String]) -> Vec<String> {
    let before = capture.lines().len();
    let input = lines.join("\n");
    let out = shared_writer(Box::new(capture.clone()));
    server
        .serve_lines(Cursor::new(input.into_bytes()), &out)
        .unwrap();
    capture.lines()[before..].to_vec()
}

/// Report lines with `wall_ms` zeroed — the one nondeterministic field.
fn normalized_lines(reports: &[JobReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.wall_ms = 0;
            r.to_line()
        })
        .collect()
}

/// Normalized report lines, sorted: acceptance order is nondeterministic
/// when two connections submit concurrently, so bit-identity across
/// concurrent runs is asserted on the sorted line sets.
fn sorted_normalized(reports: &[JobReport]) -> Vec<String> {
    let mut lines = normalized_lines(reports);
    lines.sort();
    lines
}

/// Polls until the daemon answers on `sock`, returning the connected
/// client. A fresh or stale-but-unreclaimed socket refuses the connect,
/// so retrying covers daemon startup.
#[cfg(unix)]
fn connect_when_up(sock: &std::path::Path) -> std::os::unix::net::UnixStream {
    for _ in 0..500 {
        if let Ok(stream) = std::os::unix::net::UnixStream::connect(sock) {
            return stream;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never came up on {}", sock.display());
}

#[test]
fn malformed_lines_get_structured_errors_and_the_daemon_survives() {
    let dir = temp_dir("robust");
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let responses = drive(
        &server,
        &capture,
        &[
            "this is not json".to_string(),
            "{\"op\":\"teleport\"}".to_string(),
            "{\"op\":\"embed\"}".to_string(),
            recognize_line("ghost", EmbedJobSpec::new("j"), "nowhere.pmvm"),
            "{\"op\":\"ping\"}".to_string(),
            "{\"op\":\"shutdown\"}".to_string(),
        ],
    );
    assert_eq!(responses.len(), 6, "one response per line: {responses:?}");
    for bad in &responses[..4] {
        assert_eq!(Capture::field(bad, "op"), "error", "{bad}");
        assert!(
            Capture::field(bad, "status").starts_with("failed: "),
            "{bad}"
        );
    }
    // The daemon outlived every defect: the probe and the clean
    // shutdown both answer.
    assert_eq!(Capture::field(&responses[4], "op"), "ping");
    assert_eq!(Capture::field(&responses[4], "status"), "ok");
    assert_eq!(Capture::field(&responses[5], "op"), "shutdown");
    assert_eq!(Capture::field(&responses[5], "status"), "ok");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_reports_and_copies_are_bit_identical_to_batch() {
    let dir = temp_dir("bitident");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..5)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: the batch engine over the same manifest.
    let embedder = Embedder::builder(serve_key(), serve_config()).build().unwrap();
    let recognizer = Recognizer::builder(serve_key(), serve_config()).build().unwrap();
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let batch_embeds = embed_batch(&host_program(), &embedder, &jobs, &pool, &cache).unwrap();
    let rec_jobs: Vec<RecognizeJob> = batch_embeds
        .iter()
        .map(|o| RecognizeJob::try_from(o).unwrap())
        .collect();
    let batch_recs = recognize_batch(&rec_jobs, &recognizer, &pool);

    // The daemon, fed the manifest over the wire.
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let embeds: Vec<String> = jobs
        .iter()
        .map(|j| embed_line("acme", &j.job_id, &host_path, &marked_dir))
        .collect();
    let mut batch1 = vec![open_line("acme")];
    batch1.extend(embeds);
    drive(&server, &capture, &batch1);
    // The EOF drain settled every embed, so the marked copies are on
    // disk and recognizable.
    let mut batch2: Vec<String> = jobs
        .iter()
        .map(|j| {
            recognize_line(
                "acme",
                j.clone(),
                &format!("{marked_dir}/{}.pmvm", j.job_id),
            )
        })
        .collect();
    batch2.push("{\"op\":\"shutdown\"}".to_string());
    drive(&server, &capture, &batch2);

    // Finalized serve reports equal batch reports, modulo wall_ms.
    let prefix = dir.join("journal/serve");
    let serve_embeds = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    let serve_recs = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.recognize.jsonl")).unwrap(),
    )
    .unwrap();
    let batch_embed_reports: Vec<JobReport> =
        batch_embeds.iter().map(|o| o.report.clone()).collect();
    let batch_rec_reports: Vec<JobReport> = batch_recs.iter().map(|o| o.report.clone()).collect();
    assert_eq!(normalized_lines(&serve_embeds), normalized_lines(&batch_embed_reports));
    assert_eq!(normalized_lines(&serve_recs), normalized_lines(&batch_rec_reports));
    assert!(serve_recs.iter().all(|r| r.status.is_ok()));

    // And the marked programs themselves are byte-identical.
    for (job, outcome) in jobs.iter().zip(&batch_embeds) {
        let served = std::fs::read(format!("{marked_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(
            served,
            encode_program(outcome.marked.as_ref().unwrap()),
            "{}",
            job.job_id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_never_share_decode_cache_entries() {
    let dir = temp_dir("isolation");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let sink = Arc::new(MemorySink::new());
    let mut options = ServeOptions::new(dir.join("journal/serve"));
    options.telemetry = Telemetry::new(sink.clone());
    let server = Server::new(options).unwrap();
    let capture = Capture::default();

    // Tenant A embeds one copy, then recognizes it: the scan decrypts
    // windows and fills A's decode cache.
    let copy = format!("{marked_dir}/copy-000.pmvm");
    drive(
        &server,
        &capture,
        &[
            open_line("tenant-a"),
            embed_line("tenant-a", "copy-000", &host_path, &marked_dir),
        ],
    );
    drive(
        &server,
        &capture,
        &[recognize_line("tenant-a", EmbedJobSpec::new("copy-000"), &copy)],
    );
    let after_first = sink.counter(Counter::WindowsDecrypted);
    assert!(after_first > 0, "the first scan decrypts windows");

    // The same copy again under A (fresh job_id, same per-copy seed):
    // the warm per-copy session answers every window from its decode
    // cache — zero new decrypts.
    let warm_spec = EmbedJobSpec {
        job_id: "copy-000-again".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    let responses = drive(
        &server,
        &capture,
        &[recognize_line("tenant-a", warm_spec, &copy)],
    );
    assert_eq!(Capture::field(&responses[0], "status"), "ok");
    assert_eq!(
        sink.counter(Counter::WindowsDecrypted),
        after_first,
        "a warm tenant re-scan decrypts nothing"
    );
    assert!(sink.counter(Counter::SessionHit) >= 1, "the warm session was reused");

    // Tenant B opens the *same key material* under its own handle.
    // Reusing A's job_id is refused outright — answering B from A's
    // journaled outcome would leak results across tenants.
    let responses = drive(
        &server,
        &capture,
        &[
            open_line("tenant-b"),
            recognize_line("tenant-b", EmbedJobSpec::new("copy-000"), &copy),
        ],
    );
    assert_eq!(Capture::field(&responses[1], "op"), "error");
    assert!(
        Capture::field(&responses[1], "status").contains("belongs to tenant `tenant-a`"),
        "{}",
        responses[1]
    );

    // B scans the same copy under its own job id: if tenants shared
    // decode-cache entries this would decrypt nothing — isolation means
    // B pays full price even for identical key material.
    let b_spec = EmbedJobSpec {
        job_id: "b-scan".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    let responses = drive(
        &server,
        &capture,
        &[recognize_line("tenant-b", b_spec, &copy)],
    );
    assert_eq!(Capture::field(&responses[0], "status"), "ok");
    assert!(
        sink.counter(Counter::WindowsDecrypted) > after_first,
        "tenant B's scan does its own decode work: no cross-tenant sharing"
    );
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_surface_decode_cache_behavior() {
    let dir = temp_dir("cachestats");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let copy = format!("{marked_dir}/copy-000.pmvm");

    let stat = |responses: &[String]| -> Vec<u64> {
        let line = responses
            .iter()
            .find(|r| Capture::field(r, "op") == "stats")
            .unwrap();
        [
            "decode_cache_hits",
            "decode_cache_misses",
            "decode_cache_evictions",
            "decode_cache_entries",
        ]
        .iter()
        .map(|f| Capture::field(line, f).parse::<u64>().unwrap())
        .collect()
    };

    // Before any scan: every decode-cache number is zero.
    let responses = drive(
        &server,
        &capture,
        &[
            open_line("acme"),
            "{\"op\":\"stats\"}".to_string(),
            embed_line("acme", "copy-000", &host_path, &marked_dir),
        ],
    );
    assert_eq!(stat(&responses), vec![0, 0, 0, 0]);

    // One recognize fills the warm session's cache: misses and resident
    // entries appear in the stats response. Stats are requested on a
    // separate connection — within one batch the daemon answers `stats`
    // before queued scans settle.
    drive(
        &server,
        &capture,
        &[recognize_line("acme", EmbedJobSpec::new("copy-000"), &copy)],
    );
    let responses = drive(&server, &capture, &["{\"op\":\"stats\"}".to_string()]);
    let after_first = stat(&responses);
    assert!(after_first[1] > 0, "first scan misses: {after_first:?}");
    assert!(after_first[3] > 0, "decodes stay resident: {after_first:?}");

    // Re-scanning the same copy under the warm session hits the cache;
    // misses stay flat.
    let warm_spec = EmbedJobSpec {
        job_id: "copy-000-again".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("copy-000").effective_seed(SEED)),
    };
    drive(&server, &capture, &[recognize_line("acme", warm_spec, &copy)]);
    let responses = drive(&server, &capture, &["{\"op\":\"stats\"}".to_string()]);
    let after_second = stat(&responses);
    assert!(
        after_second[0] > after_first[0],
        "warm re-scan hits the cache: {after_second:?}"
    );
    assert_eq!(
        after_second[1], after_first[1],
        "warm re-scan adds no misses: {after_second:?}"
    );
    server.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_is_shed_with_a_distinct_status_and_resubmission_completes() {
    let dir = temp_dir("shed");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let mut options = ServeOptions::new(dir.join("journal/serve"));
    options.workers = 1;
    options.max_inflight = 1;
    let server = Server::new(options).unwrap();
    let capture = Capture::default();

    let jobs: Vec<String> = (0..6)
        .map(|i| embed_line("acme", &format!("copy-{i:03}"), &host_path, &marked_dir))
        .collect();
    let mut batch = vec![open_line("acme")];
    batch.extend(jobs.clone());
    let responses = drive(&server, &capture, &batch);
    let shed: Vec<&String> = responses[1..]
        .iter()
        .filter(|r| Capture::field(r, "status") == "shed")
        .collect();
    let fresh = responses[1..]
        .iter()
        .filter(|r| parse_object(r).unwrap().contains_key("disposition"))
        .count();
    assert_eq!(shed.len() + fresh, 6, "every job answered: {responses:?}");
    assert!(!shed.is_empty(), "a 1-deep gate sheds a 6-job burst");
    assert!(fresh >= 1, "the admitted job completes");
    for line in &shed {
        assert!(
            parse_object(line).unwrap().contains_key("job_id"),
            "shed responses name the job so clients can resubmit: {line}"
        );
    }

    // Shed means *not accepted*: backing off and resubmitting the same
    // lines runs the shed jobs and answers the settled ones from the
    // journal. A resubmitted burst can shed again, so clients loop.
    let mut total_shed = shed.len();
    loop {
        let responses = drive(&server, &capture, &jobs);
        let sheds = responses
            .iter()
            .filter(|r| Capture::field(r, "status") == "shed")
            .count();
        total_shed += sheds;
        if sheds == 0 {
            break;
        }
    }
    let responses = drive(
        &server,
        &capture,
        &["{\"op\":\"stats\"}".to_string(), "{\"op\":\"shutdown\"}".to_string()],
    );
    let stats = responses
        .iter()
        .find(|r| Capture::field(r, "op") == "stats")
        .unwrap();
    assert_eq!(
        Capture::field(stats, "shed").parse::<usize>().unwrap(),
        total_shed
    );
    assert!(Capture::field(stats, "resumed").parse::<u64>().unwrap() >= 1);

    let report = parse_report(
        &std::fs::read_to_string(dir.join("journal/serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(report.len(), 6, "all six jobs eventually settled");
    assert!(report.iter().all(|r| r.status.is_ok()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crashed_daemon_resumes_to_a_bit_identical_report() {
    let dir = temp_dir("crash");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..4)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: one uninterrupted daemon runs all four jobs.
    let ref_dir = dir.join("marked-ref").to_str().unwrap().to_string();
    {
        let server = Server::new(ServeOptions::new(dir.join("ref/serve"))).unwrap();
        let capture = Capture::default();
        let mut batch = vec![open_line("acme")];
        batch.extend(jobs.iter().map(|j| embed_line("acme", &j.job_id, &host_path, &ref_dir)));
        batch.push("{\"op\":\"shutdown\"}".to_string());
        drive(&server, &capture, &batch);
    }
    let reference = parse_report(
        &std::fs::read_to_string(dir.join("ref/serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(reference.len(), 4);

    // The crash: a daemon accepts and settles three jobs, then dies
    // without finalizing (dropped mid-service). The fourth job was
    // accepted — its intent is journaled — but never ran, and the kill
    // tears a trailing line in both the intents file and the outcome
    // sidecar.
    let crash_dir = dir.join("marked-crash").to_str().unwrap().to_string();
    let prefix = dir.join("crash/serve");
    {
        let server = Server::new(ServeOptions::new(&prefix)).unwrap();
        let capture = Capture::default();
        let mut batch = vec![open_line("acme")];
        batch.extend(
            jobs[..3]
                .iter()
                .map(|j| embed_line("acme", &j.job_id, &host_path, &crash_dir)),
        );
        drive(&server, &capture, &batch);
        // No shutdown, no finish: dropping the server is the crash.
    }
    let intents = prefix.with_file_name("serve.intents.jsonl");
    let mut text = std::fs::read_to_string(&intents).unwrap();
    text.push_str(&embed_line("acme", "copy-003", &host_path, &crash_dir));
    text.push('\n');
    text.push_str("{\"op\":\"embed\",\"tenant\":\"acme\",\"job_id\":\"to");
    std::fs::write(&intents, &text).unwrap();
    let sidecar = prefix.with_file_name("serve.embed.jsonl.partial");
    let mut text = std::fs::read_to_string(&sidecar).unwrap();
    text.push_str("{\"job_id\":\"copy-0");
    std::fs::write(&sidecar, &text).unwrap();

    // Restart with --resume: the journal replay rebuilds the tenant and
    // runs the pending fourth job before the first client line; the
    // client then resubmits everything (at-least-once) and every answer
    // comes from the journal.
    let mut options = ServeOptions::new(&prefix);
    options.resume = true;
    let server = Server::new(options).unwrap();
    let capture = Capture::default();
    let mut batch = vec![open_line("acme")];
    batch.extend(jobs.iter().map(|j| embed_line("acme", &j.job_id, &host_path, &crash_dir)));
    batch.push("{\"op\":\"shutdown\"}".to_string());
    let responses = drive(&server, &capture, &batch);
    for line in &responses[1..5] {
        assert_eq!(
            Capture::field(line, "disposition"),
            "resumed",
            "a resubmitted settled job is answered from the journal: {line}"
        );
    }

    // The resumed daemon's finalized report is line-for-line the
    // uninterrupted daemon's report, and the marked copies match bytes.
    let resumed = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(normalized_lines(&resumed), normalized_lines(&reference));
    assert!(
        !intents.exists(),
        "finalize retires the intents file on the resumed run too"
    );
    for job in &jobs {
        let reference = std::fs::read(format!("{ref_dir}/{}.pmvm", job.job_id)).unwrap();
        let crashed = std::fs::read(format!("{crash_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(reference, crashed, "{}", job.job_id);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_concurrent_clients_interleave_and_match_batch_bit_identically() {
    let dir = temp_dir("twoclient");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..6)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: the batch engine over the same six jobs.
    let embedder = Embedder::builder(serve_key(), serve_config()).build().unwrap();
    let recognizer = Recognizer::builder(serve_key(), serve_config()).build().unwrap();
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let batch_embeds = embed_batch(&host_program(), &embedder, &jobs, &pool, &cache).unwrap();
    let rec_jobs: Vec<RecognizeJob> = batch_embeds
        .iter()
        .map(|o| RecognizeJob::try_from(o).unwrap())
        .collect();
    let batch_recs = recognize_batch(&rec_jobs, &recognizer, &pool);

    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let control = Capture::default();
    drive(&server, &control, &[open_line("acme")]);

    // Two clients embed disjoint halves concurrently — each scoped
    // thread runs `serve_lines`, exactly what the accept loop runs per
    // socket connection, with its own response writer.
    let half_a: Vec<&EmbedJobSpec> = jobs.iter().step_by(2).collect();
    let half_b: Vec<&EmbedJobSpec> = jobs.iter().skip(1).step_by(2).collect();
    let embed_lines = |half: &[&EmbedJobSpec]| -> Vec<String> {
        half.iter()
            .map(|j| embed_line("acme", &j.job_id, &host_path, &marked_dir))
            .collect()
    };
    let expect_ids = |half: &[&EmbedJobSpec]| -> Vec<String> {
        let mut ids: Vec<String> = half.iter().map(|j| j.job_id.clone()).collect();
        ids.sort();
        ids
    };
    // Each connection's responses carry exactly its own job_ids — that
    // is how clients correlate answers on a shared daemon.
    let answered_ids = |capture: &Capture, op: &str| -> Vec<String> {
        let mut ids: Vec<String> = capture
            .lines()
            .iter()
            .map(|l| {
                assert_eq!(Capture::field(l, "op"), op, "{l}");
                assert_eq!(Capture::field(l, "status"), "ok", "{l}");
                assert_eq!(Capture::field(l, "disposition"), "fresh", "{l}");
                Capture::field(l, "job_id")
            })
            .collect();
        ids.sort();
        ids
    };
    let (lines_a, lines_b) = (embed_lines(&half_a), embed_lines(&half_b));
    let (capture_a, capture_b) = (Capture::default(), Capture::default());
    std::thread::scope(|scope| {
        scope.spawn(|| drive(&server, &capture_a, &lines_a));
        scope.spawn(|| drive(&server, &capture_b, &lines_b));
    });
    assert_eq!(answered_ids(&capture_a, "embed"), expect_ids(&half_a));
    assert_eq!(answered_ids(&capture_b, "embed"), expect_ids(&half_b));

    // Both EOF drains settled, so the copies are on disk: the clients
    // now recognize concurrently, each scanning the *other's* copies.
    let rec_lines = |half: &[&EmbedJobSpec]| -> Vec<String> {
        half.iter()
            .map(|j| {
                recognize_line(
                    "acme",
                    (*j).clone(),
                    &format!("{marked_dir}/{}.pmvm", j.job_id),
                )
            })
            .collect()
    };
    let (lines_a, lines_b) = (rec_lines(&half_b), rec_lines(&half_a));
    let (capture_a, capture_b) = (Capture::default(), Capture::default());
    std::thread::scope(|scope| {
        scope.spawn(|| drive(&server, &capture_a, &lines_a));
        scope.spawn(|| drive(&server, &capture_b, &lines_b));
    });
    assert_eq!(answered_ids(&capture_a, "recognize"), expect_ids(&half_b));
    assert_eq!(answered_ids(&capture_b, "recognize"), expect_ids(&half_a));
    drive(&server, &control, &["{\"op\":\"shutdown\"}".to_string()]);

    // Finalized reports equal the batch engine's, modulo wall_ms and
    // acceptance order; the marked programs match byte for byte.
    let prefix = dir.join("journal/serve");
    let serve_embeds = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    let serve_recs = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.recognize.jsonl")).unwrap(),
    )
    .unwrap();
    let batch_embed_reports: Vec<JobReport> =
        batch_embeds.iter().map(|o| o.report.clone()).collect();
    let batch_rec_reports: Vec<JobReport> = batch_recs.iter().map(|o| o.report.clone()).collect();
    assert_eq!(sorted_normalized(&serve_embeds), sorted_normalized(&batch_embed_reports));
    assert_eq!(sorted_normalized(&serve_recs), sorted_normalized(&batch_rec_reports));
    for (job, outcome) in jobs.iter().zip(&batch_embeds) {
        let served = std::fs::read(format!("{marked_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(
            served,
            encode_program(outcome.marked.as_ref().unwrap()),
            "{}",
            job.job_id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn a_stalled_client_does_not_block_another_clients_ping() {
    let dir = temp_dir("stall");
    let sock = dir.join("daemon.sock");
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_unix(&sock));
        // Client 1 stalls mid-line: the daemon's reader for this
        // connection blocks inside its line read and stays there.
        let mut stalled = connect_when_up(&sock);
        stalled.write_all(b"{\"op\":\"ping\"").unwrap();
        stalled.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        // Client 2's ping round-trips while client 1 is mid-read. The
        // read timeout bounds the test; a one-client-at-a-time accept
        // loop would never even accept this connection.
        let ping = connect_when_up(&sock);
        ping.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut requests = ping.try_clone().unwrap();
        let mut responses = BufReader::new(ping);
        requests.write_all(b"{\"op\":\"ping\"}\n").unwrap();
        let mut line = String::new();
        responses.read_line(&mut line).unwrap();
        assert_eq!(Capture::field(line.trim(), "op"), "ping");
        assert_eq!(Capture::field(line.trim(), "status"), "ok");

        // Shutdown over client 2: the daemon severs the stalled
        // connection instead of waiting forever for its line to finish.
        requests.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        responses.read_line(&mut line).unwrap();
        assert_eq!(Capture::field(line.trim(), "op"), "shutdown");
        stalled
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut buf = [0u8; 16];
        let severed = stalled.read(&mut buf);
        assert!(
            matches!(severed, Ok(0) | Err(_)),
            "the stalled connection is severed on shutdown: {severed:?}"
        );
        daemon.join().unwrap().unwrap();
    });
    assert!(!sock.exists(), "a clean exit removes the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_flooding_tenant_is_shed_on_fairness_while_its_peer_keeps_its_slot() {
    let dir = temp_dir("fairness");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let sink = Arc::new(MemorySink::new());
    let mut options = ServeOptions::new(dir.join("journal/serve"));
    options.workers = 1;
    options.max_inflight = 4;
    options.telemetry = Telemetry::new(sink.clone());
    let server = Server::new(options).unwrap();
    let capture = Capture::default();

    // Warm-up: tenant B embeds one copy (settled by the EOF drain), so
    // the flood batch has something for B to scan.
    drive(
        &server,
        &capture,
        &[
            open_line("tenant-b"),
            open_line("tenant-a"),
            embed_line("tenant-b", "warm-b", &host_path, &marked_dir),
        ],
    );

    // The flood: B submits one scan, then A bursts eight embeds. With
    // four slots and two active tenants, A's fair share is two — the
    // burst sheds with scope `tenant` while the gate still has global
    // room, and B's slot is never at risk. (The single worker keeps
    // B's scan in flight across the whole dispatch burst, so the
    // outcome is deterministic.)
    let b_scan = EmbedJobSpec {
        job_id: "b-scan".to_string(),
        watermark_hex: None,
        seed: Some(EmbedJobSpec::new("warm-b").effective_seed(SEED)),
    };
    let a_jobs: Vec<String> = (0..8)
        .map(|i| embed_line("tenant-a", &format!("a-{i:03}"), &host_path, &marked_dir))
        .collect();
    let mut flood = vec![recognize_line(
        "tenant-b",
        b_scan,
        &format!("{marked_dir}/warm-b.pmvm"),
    )];
    flood.extend(a_jobs.clone());
    let responses = drive(&server, &capture, &flood);
    let scopes: Vec<String> = responses
        .iter()
        .filter(|r| Capture::field(r, "status") == "shed")
        .map(|r| Capture::field(r, "scope"))
        .collect();
    assert!(
        !scopes.is_empty(),
        "the burst overruns A's fair share: {responses:?}"
    );
    assert!(
        scopes.iter().all(|s| s == "tenant"),
        "fairness fires with global room to spare — no capacity sheds: {responses:?}"
    );
    let b_response = responses
        .iter()
        .find(|r| Capture::field(r, "job_id") == "b-scan")
        .unwrap();
    assert_eq!(
        Capture::field(b_response, "status"),
        "ok",
        "B's scan is untouched by A's flood"
    );
    let tenant_shed = scopes.len() as u64;
    assert_eq!(sink.counter(Counter::TenantShed), tenant_shed);
    let responses = drive(&server, &capture, &["{\"op\":\"stats\"}".to_string()]);
    assert_eq!(
        Capture::field(&responses[0], "tenant_shed").parse::<u64>().unwrap(),
        tenant_shed
    );
    assert_eq!(
        Capture::field(&responses[0], "shed"),
        "0",
        "the flood never hit the global ceiling"
    );

    // Shed means not-accepted: A backs off and resubmits what was shed
    // until everything settles (solo resubmission can legitimately hit
    // the global ceiling now that A is the only active tenant).
    let mut pending = a_jobs;
    loop {
        let responses = drive(&server, &capture, &pending);
        let shed_ids: Vec<String> = responses
            .iter()
            .filter(|r| Capture::field(r, "status") == "shed")
            .map(|r| Capture::field(r, "job_id"))
            .collect();
        if shed_ids.is_empty() {
            break;
        }
        pending.retain(|line| {
            shed_ids
                .iter()
                .any(|id| line.contains(&format!("\"job_id\":\"{id}\"")))
        });
    }
    drive(&server, &capture, &["{\"op\":\"shutdown\"}".to_string()]);
    let embeds = parse_report(
        &std::fs::read_to_string(dir.join("journal/serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(embeds.len(), 9, "warm-b plus all eight a-jobs settled");
    assert!(embeds.iter().all(|r| r.status.is_ok()));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_crash_with_two_writers_and_a_rotated_journal_resumes_bit_identically() {
    let dir = temp_dir("crash2");
    let host_path = write_host(&dir);
    let jobs: Vec<EmbedJobSpec> = (0..7)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // The reference: the batch engine over the same seven jobs.
    let embedder = Embedder::builder(serve_key(), serve_config()).build().unwrap();
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let batch_embeds = embed_batch(&host_program(), &embedder, &jobs, &pool, &cache).unwrap();
    let batch_reports: Vec<JobReport> = batch_embeds.iter().map(|o| o.report.clone()).collect();

    // The crash run: a byte-capped journal rotates under two concurrent
    // writer connections; jobs 0-5 settle, then the daemon dies with
    // job 6 accepted (intent journaled) but never run, plus a torn
    // trailing line from the kill.
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let prefix = dir.join("crash/serve");
    {
        let mut options = ServeOptions::new(&prefix);
        options.journal_max_bytes = Some(256);
        let server = Server::new(options).unwrap();
        let control = Capture::default();
        drive(&server, &control, &[open_line("acme")]);
        let embed_lines = |half: &[EmbedJobSpec]| -> Vec<String> {
            half.iter()
                .map(|j| embed_line("acme", &j.job_id, &host_path, &marked_dir))
                .collect()
        };
        let (lines_a, lines_b) = (embed_lines(&jobs[..3]), embed_lines(&jobs[3..6]));
        let (capture_a, capture_b) = (Capture::default(), Capture::default());
        std::thread::scope(|scope| {
            scope.spawn(|| drive(&server, &capture_a, &lines_a));
            scope.spawn(|| drive(&server, &capture_b, &lines_b));
        });
        let responses = drive(&server, &control, &["{\"op\":\"stats\"}".to_string()]);
        assert!(
            Capture::field(&responses[0], "journal_rotations")
                .parse::<u64>()
                .unwrap()
                >= 1,
            "the byte cap forced rotation while both writers were live"
        );
        // No shutdown, no finish: dropping the server is the crash.
    }
    let compact = prefix.with_file_name("serve.intents.compact.jsonl");
    assert!(compact.exists(), "rotation left a compacted segment behind");
    let intents = prefix.with_file_name("serve.intents.jsonl");
    let mut text = std::fs::read_to_string(&intents).unwrap();
    text.push_str(&embed_line("acme", "copy-006", &host_path, &marked_dir));
    text.push('\n');
    text.push_str("{\"op\":\"embed\",\"tenant\":\"acme\",\"job_id\":\"to");
    std::fs::write(&intents, &text).unwrap();

    // Restart with --resume: replay reads the compacted segment, then
    // the live tail — the six settled jobs answer from the journal, the
    // pending seventh runs before the first client line, and the torn
    // tail is dropped.
    let mut options = ServeOptions::new(&prefix);
    options.resume = true;
    let server = Server::new(options).unwrap();
    let capture = Capture::default();
    let mut batch = vec![open_line("acme")];
    batch.extend(jobs.iter().map(|j| embed_line("acme", &j.job_id, &host_path, &marked_dir)));
    batch.push("{\"op\":\"shutdown\"}".to_string());
    let responses = drive(&server, &capture, &batch);
    for line in &responses[1..8] {
        assert_eq!(
            Capture::field(line, "disposition"),
            "resumed",
            "a resubmitted settled job is answered from the journal: {line}"
        );
    }

    let resumed = parse_report(
        &std::fs::read_to_string(prefix.with_file_name("serve.embed.jsonl")).unwrap(),
    )
    .unwrap();
    assert_eq!(resumed.len(), 7);
    assert_eq!(sorted_normalized(&resumed), sorted_normalized(&batch_reports));
    assert!(
        !intents.exists() && !compact.exists(),
        "finalize retires every journal segment"
    );
    for (job, outcome) in jobs.iter().zip(&batch_embeds) {
        let served = std::fs::read(format!("{marked_dir}/{}.pmvm", job.job_id)).unwrap();
        assert_eq!(
            served,
            encode_program(outcome.marked.as_ref().unwrap()),
            "{}",
            job.job_id
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(unix)]
#[test]
fn startup_reclaims_stale_sockets_but_refuses_live_daemons() {
    let dir = temp_dir("stale");
    let sock = dir.join("daemon.sock");
    // A stale socket: a daemon that died without cleanup leaves the
    // path bound to nothing. Startup probes it, gets no answer, and
    // reclaims it.
    drop(std::os::unix::net::UnixListener::bind(&sock).unwrap());
    assert!(sock.exists(), "the dead listener's socket file lingers");
    let server = Server::new(ServeOptions::new(dir.join("first/serve"))).unwrap();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_unix(&sock));
        drop(connect_when_up(&sock));
        // A live daemon on the path: a second daemon must refuse to
        // start instead of stealing the socket out from under it.
        let second = Server::new(ServeOptions::new(dir.join("second/serve"))).unwrap();
        let err = second.serve_unix(&sock).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
        second.finish();

        let shutdown = connect_when_up(&sock);
        shutdown
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut requests = shutdown.try_clone().unwrap();
        requests.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        let mut line = String::new();
        BufReader::new(shutdown).read_line(&mut line).unwrap();
        assert_eq!(Capture::field(line.trim(), "op"), "shutdown");
        daemon.join().unwrap().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_poisoned_response_writer_is_recovered_not_fatal() {
    let dir = temp_dir("poison");
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let capture = Capture::default();
    let out = shared_writer(Box::new(capture.clone()));
    // Poison the writer lock the way a panicking worker would: die
    // while holding it.
    {
        let out = out.clone();
        let _ = std::thread::spawn(move || {
            let _guard = out.lock();
            panic!("die holding the response lock");
        })
        .join();
    }
    assert!(out.lock().is_err(), "the lock is poisoned");
    let input = "{\"op\":\"ping\"}\n{\"op\":\"shutdown\"}\n";
    server
        .serve_lines(Cursor::new(input.as_bytes().to_vec()), &out)
        .unwrap();
    let lines = capture.lines();
    assert_eq!(lines.len(), 2, "{lines:?}");
    assert_eq!(Capture::field(&lines[0], "op"), "ping");
    assert_eq!(Capture::field(&lines[0], "status"), "ok");
    assert_eq!(Capture::field(&lines[1], "op"), "shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}

#[cfg(feature = "tcp")]
#[test]
fn tcp_transport_round_trips_and_shuts_down() {
    let dir = temp_dir("tcp");
    let host_path = write_host(&dir);
    let marked_dir = dir.join("marked").to_str().unwrap().to_string();
    let server = Server::new(ServeOptions::new(dir.join("journal/serve"))).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        let daemon = scope.spawn(|| server.serve_tcp_listener(listener));
        let client = std::net::TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let mut requests = client.try_clone().unwrap();
        let mut responses = BufReader::new(client);
        for request in [
            open_line("acme"),
            embed_line("acme", "copy-000", &host_path, &marked_dir),
        ] {
            requests.write_all(request.as_bytes()).unwrap();
            requests.write_all(b"\n").unwrap();
        }
        let mut line = String::new();
        for _ in 0..2 {
            line.clear();
            responses.read_line(&mut line).unwrap();
            assert_eq!(Capture::field(line.trim(), "status"), "ok", "{line}");
        }
        requests.write_all(b"{\"op\":\"shutdown\"}\n").unwrap();
        line.clear();
        responses.read_line(&mut line).unwrap();
        assert_eq!(Capture::field(line.trim(), "op"), "shutdown");
        daemon.join().unwrap().unwrap();
    });
    assert!(dir.join("marked/copy-000.pmvm").exists());
    let _ = std::fs::remove_dir_all(&dir);
}
