//! Cross-crate randomized-property tests on the invariants the
//! watermarking protocol rests on. Random cases are drawn from the
//! workspace's own keyed [`Prng`], so every run tests the identical
//! deterministic case set (no external property-testing crates).

use pathmark::core::bitstring::BitString;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::crypto::{DisplacementHash, Prng, Xtea};
use pathmark::math::bigint::{ext_gcd, BigInt, BigUint};
use pathmark::math::crt::combine_statements;
use pathmark::math::enumeration::PairEnumeration;
use pathmark::math::primes::generate_primes;
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::insn::Cond;
use pathmark::vm::interp::Vm;
use pathmark::vm::trace::TraceConfig;

const CASES: usize = 64;

// ---- bignum vs u128 oracle -------------------------------------------

#[test]
fn bigint_add_matches_u128() {
    let mut rng = Prng::from_seed(0xADD);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let sum = &BigUint::from(a) + &BigUint::from(b);
        assert_eq!(sum, BigUint::from(a as u128 + b as u128));
    }
}

#[test]
fn bigint_mul_matches_u128() {
    let mut rng = Prng::from_seed(0x3B1);
    for _ in 0..CASES {
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let prod = &BigUint::from(a) * &BigUint::from(b);
        assert_eq!(prod, BigUint::from(a as u128 * b as u128));
    }
}

#[test]
fn bigint_divrem_matches_u128() {
    let mut rng = Prng::from_seed(0xD1F);
    for _ in 0..CASES {
        let a = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let b = rng.next_u64().max(1);
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b)).unwrap();
        assert_eq!(q, BigUint::from(a / b as u128));
        assert_eq!(r, BigUint::from(a % b as u128));
    }
}

#[test]
fn bigint_parse_display_round_trip() {
    let mut rng = Prng::from_seed(0x9A55);
    for _ in 0..CASES {
        let limbs: Vec<u64> = (0..rng.index(6)).map(|_| rng.next_u64()).collect();
        let n = BigUint::from_limbs(limbs);
        let s = n.to_string();
        assert_eq!(s.parse::<BigUint>().unwrap(), n);
    }
}

#[test]
fn ext_gcd_bezout() {
    let mut rng = Prng::from_seed(0xBE2);
    for _ in 0..CASES {
        let a = rng.next_u64().max(1);
        let b = rng.next_u64().max(1);
        let (g, x, y) = ext_gcd(&BigUint::from(a), &BigUint::from(b));
        let lhs = &(&BigInt::from(BigUint::from(a)) * &x)
            + &(&BigInt::from(BigUint::from(b)) * &y);
        assert_eq!(lhs, BigInt::from(g));
    }
}

// ---- cipher / hash ----------------------------------------------------

#[test]
fn xtea_round_trips() {
    let mut rng = Prng::from_seed(0x7EA);
    for _ in 0..CASES {
        let key = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
        let block = rng.next_u64();
        let cipher = Xtea::from_u128(key);
        assert_eq!(cipher.decrypt(cipher.encrypt(block)), block);
    }
}

#[test]
fn phf_is_injective_on_its_keys() {
    let mut rng = Prng::from_seed(0x9F);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mut keys: Vec<u32> = (0..1 + rng.index(199))
            .map(|_| rng.next_u32())
            .collect();
        keys.sort_unstable();
        keys.dedup();
        let h = DisplacementHash::build(&keys, seed).unwrap();
        let mut slots: Vec<usize> = keys.iter().map(|&k| h.eval(k)).collect();
        slots.sort_unstable();
        let n = slots.len();
        slots.dedup();
        assert_eq!(slots.len(), n);
    }
}

// ---- CRT / enumeration ------------------------------------------------

#[test]
fn watermark_splits_recombine() {
    let mut rng = Prng::from_seed(0xC27);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let primes = generate_primes(seed, 24, 12);
        let e = PairEnumeration::new(&primes).unwrap();
        let mut wm_bytes = vec![0u8; 1 + rng.index(31)];
        rng.fill_bytes(&mut wm_bytes);
        let w = BigUint::from_bytes_le(&wm_bytes);
        if w >= e.watermark_bound() {
            continue;
        }
        let pieces = e.split(&w);
        let (value, _) = combine_statements(&pieces, &primes).unwrap();
        assert_eq!(value, w);
    }
}

#[test]
fn enumeration_decode_encode_identity() {
    let mut rng = Prng::from_seed(0xDECE);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let raw = rng.next_u64();
        let primes = generate_primes(seed, 22, 8);
        let e = PairEnumeration::new(&primes).unwrap();
        if let Ok(statement) = e.decode(raw % e.range()) {
            assert_eq!(e.encode(&statement).unwrap(), raw % e.range());
        }
    }
}

// ---- recognition robustness -------------------------------------------

#[test]
fn recognition_never_hallucinates_from_noise() {
    let mut rng = Prng::from_seed(0x9015E);
    for _ in 0..CASES {
        // Pure random bit-strings must not produce a full recovery.
        let seed = rng.next_u64();
        let len = 100 + rng.index(3900);
        // The secret input is unused when recognizing raw bits, but the
        // session builder insists on a well-formed key.
        let key = WatermarkKey::new(seed, vec![0]);
        let config = JavaConfig::for_watermark_bits(128);
        let mut bit_rng = Prng::from_seed(seed ^ 1);
        let bits: Vec<bool> = (0..len).map(|_| bit_rng.chance(0.5)).collect();
        let rec = Recognizer::builder(key, config)
            .build()
            .unwrap()
            .recognize_bits(&BitString::from_bits(bits))
            .unwrap();
        assert!(rec.watermark.is_none(), "recovered from pure noise");
    }
}

// ---- heavier, lower-case-count properties -----------------------------

const HEAVY_CASES: usize = 12;

fn loopy_program(iters: i64) -> pathmark::vm::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(iters).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

#[test]
fn embed_recognize_round_trip_random_keys() {
    let mut rng = Prng::from_seed(0x22);
    for _ in 0..HEAVY_CASES {
        let seed = rng.next_u64();
        let pieces = 6 + rng.index(34);
        let program = loopy_program(9);
        let key = WatermarkKey::new(seed, vec![1, 2, 3]);
        let config = JavaConfig::for_watermark_bits(64).with_pieces(pieces);
        let watermark = Watermark::random_for(&config, &key);
        let marked = Embedder::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .embed(&program, &watermark)
            .unwrap();
        // Semantics.
        let orig = Vm::new(&program).with_input(vec![1, 2, 3]).run().unwrap();
        let new = Vm::new(&marked.program).with_input(vec![1, 2, 3]).run().unwrap();
        assert_eq!(orig.output, new.output);
        // Recognition.
        let rec = Recognizer::builder(key, config)
            .build()
            .unwrap()
            .recognize(&marked.program)
            .unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }
}

#[test]
fn attacked_programs_always_verify_and_run() {
    use pathmark::attacks::java as attacks;
    let mut rng = Prng::from_seed(0xA77);
    for _ in 0..HEAVY_CASES {
        let seed = rng.next_u64();
        let mut program = loopy_program(7);
        let baseline = Vm::new(&program).run().unwrap().output;
        attacks::insert_random_branches(&mut program, 15, seed);
        attacks::invert_branch_senses(&mut program, 0.6, seed ^ 1);
        attacks::reorder_blocks(&mut program, seed ^ 2);
        attacks::split_blocks(&mut program, 8, seed ^ 3);
        attacks::insert_nops(&mut program, 20, seed ^ 4);
        pathmark::vm::verify::verify(&program).unwrap();
        assert_eq!(Vm::new(&program).run().unwrap().output, baseline);
    }
}

#[test]
fn bitstring_is_invariant_under_nop_and_inversion_attacks() {
    use pathmark::attacks::java as attacks;
    let mut rng = Prng::from_seed(0xB175);
    for _ in 0..HEAVY_CASES {
        let seed = rng.next_u64();
        let program = loopy_program(9);
        let trace_of = |p: &pathmark::vm::Program| {
            Vm::new(p)
                .with_trace(TraceConfig::branches_only())
                .run()
                .unwrap()
                .trace
        };
        let before = BitString::from_trace(&trace_of(&program));
        let mut attacked = program.clone();
        attacks::insert_nops(&mut attacked, 30, seed);
        attacks::invert_branch_senses(&mut attacked, 1.0, seed ^ 9);
        attacks::reorder_blocks(&mut attacked, seed ^ 5);
        let after = BitString::from_trace(&trace_of(&attacked));
        // The defining invariance of the Section 3.1 decoding rule.
        assert_eq!(before, after);
    }
}

#[test]
fn native_rewriter_preserves_plain_program_behavior() {
    use pathmark::attacks::native as attacks;
    let mut rng = Prng::from_seed(0x4A73);
    for _ in 0..HEAVY_CASES {
        let seed = rng.next_u64();
        let nops = 1 + rng.index(39);
        let w = pathmark::workloads::native::by_name("vpr").unwrap();
        let attacked = attacks::insert_nops(&w.image, nops, seed).unwrap();
        let base = pathmark::sim::cpu::Machine::load(&w.image)
            .with_input(w.training_input.clone())
            .run(50_000_000)
            .unwrap();
        let got = pathmark::sim::cpu::Machine::load(&attacked)
            .with_input(w.training_input.clone())
            .run(50_000_000)
            .unwrap();
        assert_eq!(base.output, got.output);
    }
}
