//! Cross-crate property-based tests (proptest) on the invariants the
//! watermarking protocol rests on.

use proptest::prelude::*;

use pathmark::core::bitstring::BitString;
use pathmark::core::java::{embed, recognize_bits, JavaConfig};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::crypto::{DisplacementHash, Prng, Xtea};
use pathmark::math::bigint::{ext_gcd, BigInt, BigUint};
use pathmark::math::crt::combine_statements;
use pathmark::math::enumeration::PairEnumeration;
use pathmark::math::primes::generate_primes;
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::insn::Cond;
use pathmark::vm::interp::Vm;
use pathmark::vm::trace::TraceConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- bignum vs u128 oracle -------------------------------------

    #[test]
    fn bigint_add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(sum, BigUint::from(a as u128 + b as u128));
    }

    #[test]
    fn bigint_mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(prod, BigUint::from(a as u128 * b as u128));
    }

    #[test]
    fn bigint_divrem_matches_u128(a in any::<u128>(), b in 1u64..) {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b)).unwrap();
        prop_assert_eq!(q, BigUint::from(a / b as u128));
        prop_assert_eq!(r, BigUint::from(a % b as u128));
    }

    #[test]
    fn bigint_parse_display_round_trip(limbs in proptest::collection::vec(any::<u64>(), 0..6)) {
        let n = BigUint::from_limbs(limbs);
        let s = n.to_string();
        prop_assert_eq!(s.parse::<BigUint>().unwrap(), n);
    }

    #[test]
    fn ext_gcd_bezout(a in 1u64.., b in 1u64..) {
        let (g, x, y) = ext_gcd(&BigUint::from(a), &BigUint::from(b));
        let lhs = &(&BigInt::from(BigUint::from(a)) * &x)
            + &(&BigInt::from(BigUint::from(b)) * &y);
        prop_assert_eq!(lhs, BigInt::from(g));
    }

    // ---- cipher / hash ----------------------------------------------

    #[test]
    fn xtea_round_trips(key in any::<u128>(), block in any::<u64>()) {
        let cipher = Xtea::from_u128(key);
        prop_assert_eq!(cipher.decrypt(cipher.encrypt(block)), block);
    }

    #[test]
    fn phf_is_injective_on_its_keys(
        seed in any::<u64>(),
        keys in proptest::collection::hash_set(any::<u32>(), 1..200),
    ) {
        let keys: Vec<u32> = keys.into_iter().collect();
        let h = DisplacementHash::build(&keys, seed).unwrap();
        let mut slots: Vec<usize> = keys.iter().map(|&k| h.eval(k)).collect();
        slots.sort_unstable();
        let n = slots.len();
        slots.dedup();
        prop_assert_eq!(slots.len(), n);
    }

    // ---- CRT / enumeration ------------------------------------------

    #[test]
    fn watermark_splits_recombine(seed in any::<u64>(), wm_bytes in proptest::collection::vec(any::<u8>(), 1..32)) {
        let primes = generate_primes(seed, 24, 12);
        let e = PairEnumeration::new(&primes).unwrap();
        let w = BigUint::from_bytes_le(&wm_bytes);
        prop_assume!(w < e.watermark_bound());
        let pieces = e.split(&w);
        let (value, _) = combine_statements(&pieces, &primes).unwrap();
        prop_assert_eq!(value, w);
    }

    #[test]
    fn enumeration_decode_encode_identity(seed in any::<u64>(), raw in any::<u64>()) {
        let primes = generate_primes(seed, 22, 8);
        let e = PairEnumeration::new(&primes).unwrap();
        if let Ok(statement) = e.decode(raw % e.range()) {
            prop_assert_eq!(e.encode(&statement).unwrap(), raw % e.range());
        }
    }

    // ---- recognition robustness -------------------------------------

    #[test]
    fn recognition_never_hallucinates_from_noise(seed in any::<u64>(), len in 100usize..4000) {
        // Pure random bit-strings must not produce a full recovery.
        let key = WatermarkKey::new(seed, vec![]);
        let config = JavaConfig::for_watermark_bits(128);
        let mut rng = Prng::from_seed(seed ^ 1);
        let bits: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
        let rec = recognize_bits(&BitString::from_bits(bits), &key, &config).unwrap();
        prop_assert!(rec.watermark.is_none(), "recovered from pure noise");
    }
}

// ---- heavier, lower-case-count properties ---------------------------

fn loopy_program(iters: i64) -> pathmark::vm::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(iters).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn embed_recognize_round_trip_random_keys(seed in any::<u64>(), pieces in 6usize..40) {
        let program = loopy_program(9);
        let key = WatermarkKey::new(seed, vec![1, 2, 3]);
        let config = JavaConfig::for_watermark_bits(64).with_pieces(pieces);
        let watermark = Watermark::random_for(&config, &key);
        let marked = embed(&program, &watermark, &key, &config).unwrap();
        // Semantics.
        let orig = Vm::new(&program).with_input(vec![1, 2, 3]).run().unwrap();
        let new = Vm::new(&marked.program).with_input(vec![1, 2, 3]).run().unwrap();
        prop_assert_eq!(orig.output, new.output);
        // Recognition.
        let rec = pathmark::core::java::recognize(&marked.program, &key, &config).unwrap();
        prop_assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
    }

    #[test]
    fn attacked_programs_always_verify_and_run(seed in any::<u64>()) {
        use pathmark::attacks::java as attacks;
        let mut program = loopy_program(7);
        let baseline = Vm::new(&program).run().unwrap().output;
        attacks::insert_random_branches(&mut program, 15, seed);
        attacks::invert_branch_senses(&mut program, 0.6, seed ^ 1);
        attacks::reorder_blocks(&mut program, seed ^ 2);
        attacks::split_blocks(&mut program, 8, seed ^ 3);
        attacks::insert_nops(&mut program, 20, seed ^ 4);
        pathmark::vm::verify::verify(&program).unwrap();
        prop_assert_eq!(Vm::new(&program).run().unwrap().output, baseline);
    }

    #[test]
    fn bitstring_is_invariant_under_nop_and_inversion_attacks(seed in any::<u64>()) {
        use pathmark::attacks::java as attacks;
        let program = loopy_program(9);
        let trace_of = |p: &pathmark::vm::Program| {
            Vm::new(p)
                .with_trace(TraceConfig::branches_only())
                .run()
                .unwrap()
                .trace
        };
        let before = BitString::from_trace(&trace_of(&program));
        let mut attacked = program.clone();
        attacks::insert_nops(&mut attacked, 30, seed);
        attacks::invert_branch_senses(&mut attacked, 1.0, seed ^ 9);
        attacks::reorder_blocks(&mut attacked, seed ^ 5);
        let after = BitString::from_trace(&trace_of(&attacked));
        // The defining invariance of the Section 3.1 decoding rule.
        prop_assert_eq!(before, after);
    }

    #[test]
    fn native_rewriter_preserves_plain_program_behavior(seed in any::<u64>(), nops in 1usize..40) {
        use pathmark::attacks::native as attacks;
        let w = pathmark::workloads::native::by_name("vpr").unwrap();
        let attacked = attacks::insert_nops(&w.image, nops, seed).unwrap();
        let base = pathmark::sim::cpu::Machine::load(&w.image)
            .with_input(w.training_input.clone())
            .run(50_000_000)
            .unwrap();
        let got = pathmark::sim::cpu::Machine::load(&attacked)
            .with_input(w.training_input.clone())
            .run(50_000_000)
            .unwrap();
        prop_assert_eq!(base.output, got.output);
    }
}
