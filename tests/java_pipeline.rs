//! End-to-end integration tests for the bytecode watermarking pipeline:
//! workloads × watermark sizes × attacks, spanning `pathmark-core`,
//! `pathmark-workloads`, `pathmark-attacks`, and `stackvm`.

use pathmark::attacks::java as attacks;
use pathmark::core::java::{CodegenPolicy, Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::vm::interp::Vm;
use pathmark::vm::Program;
use pathmark::workloads::java as workloads;

/// A named in-place program transformation from the attack suite.
type BoxedAttack = Box<dyn Fn(&mut Program)>;

fn key_for(input: Vec<i64>) -> WatermarkKey {
    WatermarkKey::new(0x0123_4567_89AB, input)
}

fn embedder(key: &WatermarkKey, config: &JavaConfig) -> Embedder {
    Embedder::builder(key.clone(), config.clone())
        .build()
        .expect("test key/config are sound")
}

fn recognizer(key: &WatermarkKey, config: &JavaConfig) -> Recognizer {
    Recognizer::builder(key.clone(), config.clone())
        .build()
        .expect("test key/config are sound")
}

fn output_of(program: &Program, input: &[i64]) -> Vec<i64> {
    Vm::new(program)
        .with_input(input.to_vec())
        .run()
        .expect("program runs")
        .output
}

#[test]
fn paper_watermark_sizes_round_trip_on_both_workloads() {
    // The paper evaluates 128-, 256- and 512-bit watermarks (Sec 5.1.1).
    for workload in workloads::all() {
        for bits in [128usize, 256, 512] {
            let key = key_for(workload.secret_input.clone());
            let config = JavaConfig::for_watermark_bits(bits).with_pieces(80);
            let watermark = Watermark::random_for(&config, &key);
            let marked = embedder(&key, &config).embed(&workload.program, &watermark)
                .unwrap_or_else(|e| panic!("{} {bits}: {e}", workload.name));
            assert_eq!(
                output_of(&workload.program, &workload.secret_input),
                output_of(&marked.program, &workload.secret_input),
                "{} {bits}: semantics",
                workload.name
            );
            let rec = recognizer(&key, &config).recognize(&marked.program).expect("recognizes");
            assert_eq!(
                rec.watermark.as_ref(),
                Some(watermark.value()),
                "{} {bits}-bit round trip",
                workload.name
            );
        }
    }
}

#[test]
fn watermark_survives_the_distortive_suite() {
    let workload = workloads::jess_like();
    let key = key_for(vec![40]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(60);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();
    let expected = output_of(&workload, &[40]);

    let suite: Vec<(&str, BoxedAttack)> = vec![
        ("nops", Box::new(|p: &mut Program| attacks::insert_nops(p, 400, 1))),
        (
            "inversion",
            Box::new(|p: &mut Program| attacks::invert_branch_senses(p, 1.0, 2)),
        ),
        ("reorder", Box::new(|p: &mut Program| attacks::reorder_blocks(p, 3))),
        ("split", Box::new(|p: &mut Program| attacks::split_blocks(p, 150, 4))),
        (
            "copy",
            Box::new(|p: &mut Program| {
                attacks::copy_blocks(p, 30, 5);
            }),
        ),
        (
            "light branch insertion",
            Box::new(|p: &mut Program| attacks::insert_random_branches(p, 40, 6)),
        ),
    ];
    for (name, attack) in suite {
        let mut attacked = marked.program.clone();
        attack(&mut attacked);
        assert_eq!(output_of(&attacked, &[40]), expected, "{name}: semantics");
        let rec = recognizer(&key, &config).recognize(&attacked).expect("recognizes");
        assert_eq!(
            rec.watermark.as_ref(),
            Some(watermark.value()),
            "{name}: watermark must survive"
        );
    }
}

#[test]
fn massive_branch_insertion_eventually_destroys_the_mark() {
    // Figure 8(c)'s other end: with enough random branches, pieces are
    // corrupted faster than redundancy can compensate. Few pieces +
    // overwhelming insertion = destruction.
    let workload = workloads::caffeinemark();
    let key = key_for(vec![6]);
    let config = JavaConfig::for_watermark_bits(512).with_pieces(4);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();
    let mut attacked = marked.program.clone();
    let branches = attacked.conditional_branch_count();
    attacks::insert_random_branches(&mut attacked, branches * 12, 9);
    let rec = recognizer(&key, &config).recognize(&attacked).expect("recognition still runs");
    assert_ne!(
        rec.watermark.as_ref(),
        Some(watermark.value()),
        "4 pieces cannot survive a 1200% branch flood"
    );
}

#[test]
fn redundancy_beats_the_same_flood() {
    // Same flood as above, but with heavy piece redundancy: Figure 8(c)
    // says survivable insertion grows with the piece count. 128 pieces
    // is the most `validate()` allows for a 128-bit mark.
    let config = JavaConfig::for_watermark_bits(128).with_pieces(128);
    let workload = workloads::jess_like();
    let key = key_for(vec![40]);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();
    let mut attacked = marked.program.clone();
    attacks::insert_random_branches(&mut attacked, 60, 9);
    let rec = recognizer(&key, &config).recognize(&attacked).expect("recognizes");
    assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
}

#[test]
fn class_encryption_denies_static_recognition_but_not_runtime_tracing() {
    let workload = workloads::caffeinemark();
    let key = key_for(vec![6]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(30);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();

    let encrypted = attacks::EncryptedProgram::encrypt(&marked.program, 0x1CE);
    // Semantics preserved.
    assert_eq!(
        encrypted.run(vec![6]).unwrap().output,
        output_of(&workload, &[6])
    );
    // Static instrumentation sees only the stub: no mark.
    let stub_rec = recognizer(&key, &config).recognize(encrypted.stub()).unwrap();
    assert_eq!(stub_rec.watermark, None);
    // Runtime-level tracing sees the decrypted bytecode: mark intact.
    let runtime = encrypted.decrypt_for_runtime_tracing().unwrap();
    let rec = recognizer(&key, &config).recognize(&runtime).unwrap();
    assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
}

#[test]
fn cold_spot_insertion_prefers_infrequent_blocks() {
    // The Jess-like workload has hot loop blocks and many cold ones; the
    // frequency-weighted embedder must overwhelmingly choose cold sites.
    use pathmark::vm::trace::TraceConfig;
    let workload = workloads::jess_like();
    let key = key_for(vec![40]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(60);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();
    let trace = Vm::new(&workload)
        .with_input(vec![40])
        .with_trace(TraceConfig::full())
        .run()
        .unwrap()
        .trace;
    let freq = trace.block_frequencies();
    // "Infrequent" per the embedder's own policy: the loop generator
    // prefers once-visited blocks; the condition generator needs 2..=16
    // visits. Hot blocks (hundreds+ of visits) must be avoided.
    let cold = marked
        .report
        .pieces
        .iter()
        .filter(|p| freq.get(&p.site).copied().unwrap_or(0) <= 16)
        .count();
    assert!(
        cold * 10 >= marked.report.pieces.len() * 9,
        "at least 90% of pieces in infrequent blocks ({cold}/{})",
        marked.report.pieces.len()
    );
}

#[test]
fn marked_program_works_on_unrelated_inputs() {
    // The watermark key input is secret; customers run other inputs.
    let workload = workloads::caffeinemark();
    let key = key_for(vec![6]);
    let config = JavaConfig::for_watermark_bits(256).with_pieces(50);
    let watermark = Watermark::random_for(&config, &key);
    let marked = embedder(&key, &config).embed(&workload.clone(), &watermark).unwrap();
    for input in [vec![], vec![1], vec![9], vec![17]] {
        assert_eq!(
            output_of(&workload, &input),
            output_of(&marked.program, &input),
            "input {input:?}"
        );
    }
}

#[test]
fn loop_only_and_condition_codegen_both_round_trip_on_workloads() {
    let workload = workloads::jess_like();
    for policy in [CodegenPolicy::LoopOnly, CodegenPolicy::PreferCondition] {
        let key = key_for(vec![40]);
        let config = JavaConfig::for_watermark_bits(128)
            .with_pieces(40)
            .with_codegen(policy);
        let watermark = Watermark::random_for(&config, &key);
        let marked = embedder(&key, &config).embed(&workload, &watermark).unwrap();
        let rec = recognizer(&key, &config).recognize(&marked.program).unwrap();
        assert_eq!(
            rec.watermark.as_ref(),
            Some(watermark.value()),
            "{policy:?}"
        );
    }
}

#[test]
fn double_java_watermarking_keeps_the_first_mark_readable() {
    // An additive attack: embed a second watermark under a different
    // key. Both marks coexist (the paper: "no protection against
    // additive attacks" — but the original remains readable, so
    // ownership disputes devolve to key escrow, as usual).
    let workload = workloads::jess_like();
    let key1 = key_for(vec![40]);
    let key2 = WatermarkKey::new(0xFFFF_0000_1111, vec![40]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(40);
    let w1 = Watermark::random_for(&config, &key1);
    let w2 = Watermark::random_for(&config, &key2);
    let once = embedder(&key1, &config).embed(&workload, &w1).unwrap();
    let twice = embedder(&key2, &config).embed(&once.program, &w2).unwrap();
    let rec1 = recognizer(&key1, &config).recognize(&twice.program).unwrap();
    let rec2 = recognizer(&key2, &config).recognize(&twice.program).unwrap();
    assert_eq!(rec1.watermark.as_ref(), Some(w1.value()));
    assert_eq!(rec2.watermark.as_ref(), Some(w2.value()));
}
