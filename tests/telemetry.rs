//! End-to-end telemetry tests: instrumentation must never change what
//! the pipeline computes (bit-identical output under any sink), and the
//! fleet's metrics must be consistent regardless of worker count.

use std::io::Write;
use std::sync::{Arc, Mutex};

use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::fleet::batch::embed_batch;
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::manifest::EmbedJobSpec;
use pathmark::fleet::pool::WorkerPool;
use pathmark::fleet::shard::recognize_program_sharded;
use pathmark::telemetry::{Counter, JsonlSink, MemorySink, Stage, Telemetry};
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::codec::encode_program;
use pathmark::vm::insn::Cond;
use pathmark::vm::Program;

/// A small host with a loop, so the trace has cold and hot spots.
fn host_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(12).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn key() -> WatermarkKey {
    WatermarkKey::new(0xDEC0DE, vec![5, 2])
}

fn config() -> JavaConfig {
    JavaConfig::for_watermark_bits(64).with_pieces(12)
}

/// A clonable in-memory writer the test can read back, standing in for
/// the CLI's metrics file.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn pipeline_output_is_bit_identical_under_null_and_jsonl_sinks() {
    let program = host_program();

    // Null sink (the default handle): the baseline.
    let plain_embedder = Embedder::builder(key(), config()).build().unwrap();
    assert!(!plain_embedder.telemetry().enabled());
    let watermark = Watermark::random_for(plain_embedder.config(), plain_embedder.key());
    let marked_plain = plain_embedder.embed(&program, &watermark).unwrap();

    // JSONL sink recording every span of the same run.
    let buf = SharedBuf::default();
    let telemetry = Telemetry::new(Arc::new(JsonlSink::new(Box::new(buf.clone()))));
    let traced_embedder = Embedder::builder(key(), config())
        .telemetry(telemetry.clone())
        .build()
        .unwrap();
    let marked_traced = traced_embedder.embed(&program, &watermark).unwrap();

    assert_eq!(
        encode_program(&marked_plain.program),
        encode_program(&marked_traced.program),
        "instrumentation changed the marked program"
    );

    // Recognition under both sinks agrees too, and recovers W.
    let rec_plain = Recognizer::builder(key(), config())
        .build()
        .unwrap()
        .recognize(&marked_plain.program)
        .unwrap();
    let traced_recognizer = Recognizer::builder(key(), config())
        .telemetry(telemetry.clone())
        .build()
        .unwrap();
    let rec_traced = traced_recognizer.recognize(&marked_traced.program).unwrap();
    assert_eq!(rec_plain, rec_traced);
    assert_eq!(rec_plain.watermark.as_ref(), Some(watermark.value()));

    // A sharded recognition adds the merge stage to the same stream.
    let pool = WorkerPool::new(4);
    let rec_sharded =
        recognize_program_sharded(&marked_traced.program, &traced_recognizer, 4, &pool).unwrap();
    assert_eq!(rec_sharded.watermark.as_ref(), Some(watermark.value()));

    telemetry.flush();
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    for stage in [
        "trace",
        "encrypt",
        "codegen",
        "scan_roll",
        "scan_decrypt",
        "vote",
        "merge",
    ] {
        assert!(
            text.contains(&format!("\"stage\":\"{stage}\"")),
            "missing {stage} span in JSONL:\n{text}"
        );
    }
    assert!(
        text.lines().all(|l| l.starts_with('{') && l.ends_with('}')),
        "every line is one JSON object"
    );
}

#[test]
fn fleet_metrics_are_consistent_across_worker_counts() {
    let program = host_program();
    let jobs: Vec<EmbedJobSpec> = (0..8)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();

    // (cache_miss, cache_hit, pool_panic, queue_wait, job_run, trace,
    // encrypt, codegen, pieces_embedded) must not depend on parallelism.
    let mut baseline: Option<[u64; 9]> = None;
    for workers in [1usize, 2, 8] {
        let sink = Arc::new(MemorySink::new());
        let telemetry = Telemetry::new(sink.clone());
        let session = Embedder::builder(key(), config())
            .telemetry(telemetry.clone())
            .build()
            .unwrap();
        let pool = WorkerPool::with_telemetry(workers, telemetry.clone());
        let cache = TraceCache::with_telemetry(telemetry.clone());
        let outcomes = embed_batch(&program, &session, &jobs, &pool, &cache).unwrap();
        assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
        // Join the workers so every span has reached the sink.
        drop(pool);

        let snapshot = [
            sink.counter(Counter::CacheMiss),
            sink.counter(Counter::CacheHit),
            sink.counter(Counter::PoolPanic),
            sink.stage(Stage::QueueWait).count,
            sink.stage(Stage::JobRun).count,
            sink.stage(Stage::Trace).count,
            sink.stage(Stage::Encrypt).count,
            sink.stage(Stage::Codegen).count,
            sink.counter(Counter::PiecesEmbedded),
        ];
        assert_eq!(snapshot[0], 1, "{workers} workers: one cold trace per batch");
        assert_eq!(snapshot[1], 0, "{workers} workers: fresh cache never hits");
        assert_eq!(snapshot[2], 0, "{workers} workers: no panics");
        assert_eq!(snapshot[3], jobs.len() as u64, "{workers} workers: queue waits");
        assert_eq!(snapshot[4], jobs.len() as u64, "{workers} workers: job runs");
        assert_eq!(snapshot[5], 1, "{workers} workers: one trace span");
        match &baseline {
            None => baseline = Some(snapshot),
            Some(expected) => assert_eq!(
                &snapshot, expected,
                "{workers} workers changed the metrics"
            ),
        }
    }
}

#[test]
fn reused_cache_reports_hits() {
    let program = host_program();
    let jobs: Vec<EmbedJobSpec> = (0..3)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect();
    let sink = Arc::new(MemorySink::new());
    let telemetry = Telemetry::new(sink.clone());
    let session = Embedder::builder(key(), config())
        .telemetry(telemetry.clone())
        .build()
        .unwrap();
    let pool = WorkerPool::with_telemetry(2, telemetry.clone());
    let cache = TraceCache::with_telemetry(telemetry.clone());
    for _ in 0..2 {
        embed_batch(&program, &session, &jobs, &pool, &cache).unwrap();
    }
    assert_eq!(sink.counter(Counter::CacheMiss), 1);
    assert_eq!(sink.counter(Counter::CacheHit), 1, "second batch reuses the trace");
}
