//! End-to-end integration tests for the native branch-function pipeline:
//! the Section 5.2.2 attack matrix, across the SPECint-like workloads.

use pathmark::attacks::native as attacks;
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::core::native::{
    embed_native, extract, ExtractionSpec, NativeConfig, NativeMark, TracerKind,
};
use pathmark::crypto::Prng;
use pathmark::sim::cpu::Machine;
use pathmark::sim::Image;
use pathmark::workloads::native as workloads;

const BUDGET: u64 = 200_000_000;

struct Setup {
    workload: workloads::NativeWorkload,
    key: WatermarkKey,
    watermark: Watermark,
    mark: NativeMark,
    spec: ExtractionSpec,
    baseline: Vec<u32>,
}

fn setup(name: &str, bits: usize, seed: u64) -> Setup {
    let workload = workloads::by_name(name).expect("workload exists");
    let key = WatermarkKey::new(
        seed,
        workload.training_input.iter().map(|&v| v as i64).collect(),
    );
    let config = NativeConfig {
        training_inputs: vec![workload.reference_input.clone()],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(seed ^ 0x77);
    let watermark = Watermark::random(bits, &mut rng);
    let mark = embed_native(&workload.image, &watermark.to_bits(), &key, &config)
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let spec = ExtractionSpec {
        begin: mark.begin,
        end: mark.end,
    };
    let baseline = Machine::load(&workload.image)
        .with_input(workload.reference_input.clone())
        .run(BUDGET)
        .expect("baseline runs")
        .output;
    Setup {
        workload,
        key,
        watermark,
        mark,
        spec,
        baseline,
    }
}

fn runs_correctly(image: &Image, input: &[u32], expected: &[u32]) -> bool {
    Machine::load(image)
        .with_input(input.to_vec())
        .run(BUDGET)
        .map(|o| o.output == expected)
        .unwrap_or(false)
}

#[test]
fn every_workload_round_trips_a_128_bit_mark() {
    for w in workloads::all() {
        let s = setup(w.name, 128, 0xAB0 + w.name.len() as u64);
        assert!(
            runs_correctly(&s.mark.image, &s.workload.reference_input, &s.baseline),
            "{}: marked binary must work",
            w.name
        );
        let bits = extract(
            &s.mark.image,
            &s.key.native_input(),
            s.spec,
            TracerKind::Smart,
            BUDGET,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            Watermark::from_bits(&bits).value(),
            s.watermark.value(),
            "{}",
            w.name
        );
    }
}

#[test]
fn paper_watermark_sizes_round_trip() {
    for bits in [128usize, 256, 512] {
        let s = setup("gcc", bits, 0xBEE + bits as u64);
        let extracted = extract(
            &s.mark.image,
            &s.key.native_input(),
            s.spec,
            TracerKind::Simple,
            BUDGET,
        )
        .unwrap();
        assert_eq!(Watermark::from_bits(&extracted).value(), s.watermark.value());
        assert_eq!(s.mark.call_sites.len(), bits + 1);
    }
}

#[test]
fn attack_noop_insertion_breaks_marked_binaries() {
    // Section 5.2.2 attack 1: "Every one of our test programs breaks
    // when even a single no-op is added to a watermarked binary."
    let s = setup("twolf", 64, 1);
    let attacked = attacks::insert_nops(&s.mark.image, 1, 5).expect("rewrite succeeds");
    assert!(
        !runs_correctly(&attacked, &s.workload.reference_input, &s.baseline),
        "one no-op must break the lock-down"
    );
    // Control: the same attack on the unmarked binary is harmless.
    let control = attacks::insert_nops(&s.workload.image, 50, 5).unwrap();
    assert!(runs_correctly(
        &control,
        &s.workload.reference_input,
        &s.baseline
    ));
}

#[test]
fn attack_branch_inversion_breaks_marked_binaries() {
    // Section 5.2.2 attack 2.
    let s = setup("gap", 64, 2);
    let attacked = attacks::invert_branch_senses(&s.mark.image, 5).expect("rewrite succeeds");
    assert!(!runs_correctly(
        &attacked,
        &s.workload.reference_input,
        &s.baseline
    ));
    let control = attacks::invert_branch_senses(&s.workload.image, 5).unwrap();
    assert!(runs_correctly(
        &control,
        &s.workload.reference_input,
        &s.baseline
    ));
}

#[test]
fn attack_double_watermarking_breaks_marked_binaries() {
    // Section 5.2.2 attack 3: re-watermarking moves text addresses.
    let s = setup("vpr", 32, 3);
    let attacker_key = WatermarkKey::new(
        0x00E7_111D,
        s.workload
            .training_input
            .iter()
            .map(|&v| v as i64)
            .collect(),
    );
    let mut rng = Prng::from_seed(33);
    let bits2: Vec<bool> = (0..32).map(|_| rng.chance(0.5)).collect();
    let config = NativeConfig::default();
    let attacked = attacks::double_watermark(&s.mark.image, &bits2, &attacker_key, &config)
        .expect("second embedding succeeds mechanically");
    assert!(!runs_correctly(
        &attacked,
        &s.workload.reference_input,
        &s.baseline
    ));
}

#[test]
fn attack_bypass_breaks_marked_binaries() {
    // Section 5.2.2 attack 4: replacing calls with same-size jumps
    // realizes the control flow but skips the lock-down updates.
    let s = setup("bzip2", 64, 4);
    let hops = attacks::discover_hops(&s.mark.image, &s.key.native_input(), BUDGET).unwrap();
    assert_eq!(hops.len(), 65);
    let attacked = attacks::bypass_branch_function(&s.mark.image, &hops).unwrap();
    assert!(!runs_correctly(
        &attacked,
        &s.workload.reference_input,
        &s.baseline
    ));
}

#[test]
fn attack_rerouting_defeats_simple_but_not_smart_tracer() {
    // Section 5.2.2 attack 5.
    let s = setup("vortex", 64, 6);
    let hops = attacks::discover_hops(&s.mark.image, &s.key.native_input(), BUDGET).unwrap();
    let sites: Vec<u32> = hops.iter().map(|h| h.call_site).collect();
    let attacked = attacks::reroute_calls(&s.mark.image, &sites).unwrap();
    // The rerouted program still works: hash inputs are intact.
    assert!(runs_correctly(
        &attacked,
        &s.workload.reference_input,
        &s.baseline
    ));
    // Simple tracer: wrong bits or outright failure.
    let simple = extract(
        &attacked,
        &s.key.native_input(),
        s.spec,
        TracerKind::Simple,
        BUDGET,
    );
    let simple_recovers =
        matches!(&simple, Ok(bits) if Watermark::from_bits(bits).value() == s.watermark.value());
    assert!(!simple_recovers, "rerouting must defeat the simple tracer");
    // Smart tracer recovers.
    let smart = extract(
        &attacked,
        &s.key.native_input(),
        s.spec,
        TracerKind::Smart,
        BUDGET,
    )
    .expect("smart tracer still extracts");
    assert_eq!(Watermark::from_bits(&smart).value(), s.watermark.value());
}

#[test]
fn tamperproofing_disabled_makes_noops_survivable_for_the_program() {
    // Without Section 4.3's lock-down, no-op insertion yields a working
    // program whose addresses all moved — the watermark dies but the
    // binary lives, showing exactly what tamper-proofing adds.
    let w = workloads::by_name("mcf").unwrap();
    let key = WatermarkKey::new(7, w.training_input.iter().map(|&v| v as i64).collect());
    let config = NativeConfig {
        tamperproof: false,
        training_inputs: vec![w.reference_input.clone()],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(70);
    let watermark = Watermark::random(32, &mut rng);
    let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).unwrap();
    let baseline = Machine::load(&w.image)
        .with_input(w.reference_input.clone())
        .run(BUDGET)
        .unwrap()
        .output;

    // Insert a no-op at the very start of the text, shifting EVERY
    // address: the XOR table's absolute addresses go stale even without
    // tamper-proofing, so the program breaks or misroutes (a random
    // insertion point, by contrast, can land harmlessly past the chain
    // — tamper-proofing is what removes that luck, see
    // `attack_noop_insertion_breaks_marked_binaries`).
    let mut unit = pathmark::sim::rewrite::Unit::from_image(&mark.image).unwrap();
    unit.insert(
        0,
        pathmark::sim::rewrite::Item::plain(pathmark::sim::insn::Insn::Nop),
    );
    let attacked = unit.encode().unwrap();
    let still_fine = runs_correctly(&attacked, &w.reference_input, &baseline);
    let bits = extract(
        &attacked,
        &key.native_input(),
        ExtractionSpec {
            begin: mark.begin + 1, // everything shifted by the 1-byte nop
            end: mark.end + 1,
        },
        TracerKind::Smart,
        BUDGET,
    );
    let recovered =
        matches!(&bits, Ok(b) if Watermark::from_bits(b).value() == watermark.value());
    assert!(
        !(still_fine && recovered),
        "a global 1-byte shift cannot leave both program and mark intact"
    );
}

#[test]
fn size_and_time_costs_are_modest() {
    // Figure 9's qualitative claims: size grows by a few percent to
    // ~20%, slowdown stays within a few percent.
    let s = setup("gcc", 512, 8);
    let growth = s.mark.size_after as f64 / s.mark.size_before as f64 - 1.0;
    assert!(
        (0.0..0.35).contains(&growth),
        "size growth {:.1}% out of range",
        growth * 100.0
    );
    let base = Machine::load(&s.workload.image)
        .with_input(s.workload.reference_input.clone())
        .run(BUDGET)
        .unwrap()
        .instructions;
    let marked = Machine::load(&s.mark.image)
        .with_input(s.workload.reference_input.clone())
        .run(BUDGET)
        .unwrap()
        .instructions;
    let slowdown = marked as f64 / base as f64 - 1.0;
    assert!(
        (-0.02..0.10).contains(&slowdown),
        "slowdown {:.2}% out of range",
        slowdown * 100.0
    );
}
