//! End-to-end tests for the batch fingerprinting engine: determinism
//! across runs and worker counts, sharded-vs-serial recognizer
//! equivalence on the pipeline fixtures, and failure isolation.

use std::sync::Arc;
use std::time::Duration;

use pathmark::core::bitstring::BitString;
use pathmark::core::java::{
    trace_program, Embedder, JavaConfig, Recognition, Recognizer,
};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::fleet::batch::{
    embed_batch, embed_batch_with, recognize_batch, BatchOptions, RecognizeJob,
};
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::faults::{Fault, FaultPlan};
use pathmark::fleet::manifest::{parse_report, EmbedJobSpec, JobReport, JobStatus, ReportWriter};
use pathmark::fleet::pool::WorkerPool;
use pathmark::fleet::retry::RetryPolicy;
use pathmark::fleet::shard::recognize_sharded;
use pathmark::telemetry::{Counter, MemorySink, Telemetry};
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::codec::encode_program;
use pathmark::vm::insn::Cond;
use pathmark::vm::trace::TraceConfig;
use pathmark::vm::Program;
use pathmark::workloads::java as workloads;

/// A small host with a loop, so batches stay fast in debug builds while
/// the trace still has cold and hot spots.
fn host_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(12).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn batch_key() -> WatermarkKey {
    WatermarkKey::new(0x000F_1EE7_CAFE, vec![3, 1, 4])
}

fn batch_config() -> JavaConfig {
    JavaConfig::for_watermark_bits(64).with_pieces(12)
}

fn manifest(n: usize) -> Vec<EmbedJobSpec> {
    (0..n)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect()
}

fn batch_embedder() -> Embedder {
    Embedder::builder(batch_key(), batch_config())
        .build()
        .expect("batch key/config are sound")
}

fn batch_recognizer() -> Recognizer {
    Recognizer::builder(batch_key(), batch_config())
        .build()
        .expect("batch key/config are sound")
}

#[test]
fn sixty_four_copies_each_recognize_to_their_own_watermark() {
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let jobs = manifest(64);
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    assert_eq!(outcomes.len(), 64);
    assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
    assert_eq!(cache.stats().misses, 1, "one trace serves all 64 jobs");

    // 64 distinct watermarks and 64 distinct marked programs.
    let mut hexes: Vec<&str> = outcomes
        .iter()
        .map(|o| o.report.watermark_hex.as_str())
        .collect();
    hexes.sort_unstable();
    hexes.dedup();
    assert_eq!(hexes.len(), 64, "watermarks are pairwise distinct");
    let mut bytes: Vec<Vec<u8>> = outcomes
        .iter()
        .map(|o| encode_program(o.marked.as_ref().unwrap()))
        .collect();
    bytes.sort_unstable();
    bytes.dedup();
    assert_eq!(bytes.len(), 64, "copies are pairwise distinct");

    // Every copy recognizes back to exactly its own W_i; the report
    // line converts straight into a recognize job.
    let rec_jobs: Vec<RecognizeJob> = outcomes
        .iter()
        .map(|o| RecognizeJob::try_from(o).expect("every embed succeeded"))
        .collect();
    let recognized = recognize_batch(&rec_jobs, &batch_recognizer(), &pool);
    for (outcome, job) in recognized.iter().zip(&rec_jobs) {
        assert!(
            outcome.report.status.is_ok(),
            "{}: {:?}",
            job.job_id,
            outcome.report
        );
        assert_eq!(
            Some(&outcome.report.watermark_hex),
            job.expected_hex.as_ref(),
            "{} recovers its own mark",
            job.job_id
        );
    }
}

#[test]
fn batches_are_byte_identical_across_runs_and_worker_counts() {
    let jobs = manifest(16);
    let mut baseline: Option<Vec<Vec<u8>>> = None;
    for workers in [1usize, 3, 8, 8] {
        let pool = WorkerPool::new(workers);
        let cache = TraceCache::new();
        let outcomes =
            embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
        let bytes: Vec<Vec<u8>> = outcomes
            .iter()
            .map(|o| encode_program(o.marked.as_ref().unwrap()))
            .collect();
        match &baseline {
            None => baseline = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "{workers} workers diverged");
            }
        }
    }
}

#[test]
fn batch_copies_match_the_serial_embedder_exactly() {
    // A fleet copy must be byte-identical to what a lone serial embed
    // with the same key and watermark would have produced.
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let jobs = manifest(4);
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    for (outcome, spec) in outcomes.iter().zip(&jobs) {
        let job_key = spec.effective_key(&batch_key());
        let watermark = spec.watermark(&batch_key(), &batch_config()).unwrap();
        let serial = batch_embedder()
            .with_key(job_key)
            .embed(&host_program(), &watermark)
            .unwrap();
        assert_eq!(
            encode_program(outcome.marked.as_ref().unwrap()),
            encode_program(&serial.program),
            "{}",
            spec.job_id
        );
    }
}

#[test]
fn sharded_recognition_is_bit_identical_on_every_pipeline_fixture() {
    let pool = WorkerPool::new(4);
    for workload in workloads::all() {
        let key = WatermarkKey::new(0x0123_4567_89AB, workload.secret_input.clone());
        let config = JavaConfig::for_watermark_bits(128).with_pieces(40);
        let watermark = Watermark::random_for(&config, &key);
        let marked = Embedder::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .embed(&workload.program, &watermark)
            .unwrap();
        let session = Recognizer::builder(key.clone(), config.clone()).build().unwrap();
        for program in [&workload.program, &marked.program] {
            let trace =
                trace_program(program, &key, &config, TraceConfig::branches_only()).unwrap();
            let bits = BitString::from_trace(&trace);
            let serial: Recognition = session.recognize_bits(&bits).unwrap();
            for shards in [1usize, 5, 16] {
                let sharded = recognize_sharded(&bits, &session, shards, &pool).unwrap();
                assert_eq!(
                    sharded, serial,
                    "{}: {shards} shards diverged",
                    workload.name
                );
            }
        }
        // Sanity: the marked fixture actually recognizes.
        let trace =
            trace_program(&marked.program, &key, &config, TraceConfig::branches_only()).unwrap();
        let rec = recognize_sharded(&BitString::from_trace(&trace), &session, 8, &pool).unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()), "{}", workload.name);
    }
}

#[test]
fn one_malformed_job_fails_while_the_rest_complete() {
    let pool = WorkerPool::new(3);
    let cache = TraceCache::new();
    let mut jobs = manifest(8);
    jobs[3].watermark_hex = Some("this-is-not-hex".to_string());
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    let (ok, failed): (Vec<_>, Vec<_>) =
        outcomes.iter().partition(|o| o.report.status.is_ok());
    assert_eq!(ok.len(), 7, "the other seven copies complete");
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].report.job_id, "copy-003");
    assert!(failed[0].marked.is_none());
}

#[test]
fn a_panicking_job_is_contained_by_the_pool() {
    // Drive the pool the way the batch engine does, with one job that
    // panics outright: the panic must surface as that job's error only.
    let pool = WorkerPool::new(4);
    let results = pool.run_all((0..12).collect::<Vec<usize>>(), |_, i| {
        assert!(i != 5, "copy 5 is poisoned");
        i * i
    });
    for (i, result) in results.iter().enumerate() {
        if i == 5 {
            assert!(result.as_ref().unwrap_err().message.contains("poisoned"));
        } else {
            assert_eq!(*result.as_ref().unwrap(), i * i);
        }
    }
}

/// A retry policy with microsecond backoffs, so fault tests stay fast.
fn fast_retries(retries: u32) -> RetryPolicy {
    RetryPolicy::with_retries(retries)
        .backoff(Duration::from_micros(10), Duration::from_micros(100))
}

fn marked_bytes(outcomes: &[pathmark::fleet::batch::EmbedOutcome]) -> Vec<Option<Vec<u8>>> {
    outcomes
        .iter()
        .map(|o| o.marked.as_ref().map(encode_program))
        .collect()
}

#[test]
fn fault_transient_panic_is_recovered_by_retry() {
    let sink = Arc::new(MemorySink::new());
    let pool = WorkerPool::with_telemetry(3, Telemetry::new(sink.clone()));
    let cache = TraceCache::new();
    let jobs = manifest(6);
    let options = BatchOptions {
        retry: fast_retries(2),
        deadline: None,
        faults: FaultPlan::for_tests().with_fault(1, Fault::Panic { attempts: 1 }),
    };
    let outcomes = embed_batch_with(
        &host_program(),
        &batch_embedder(),
        &jobs,
        &pool,
        &cache,
        &options,
        |_| {},
    )
    .unwrap();
    assert!(
        outcomes.iter().all(|o| o.report.status.is_ok()),
        "the injected panic heals on retry: {:?}",
        outcomes.iter().map(|o| &o.report).collect::<Vec<_>>()
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        let expected = if i == 1 { 2 } else { 1 };
        assert_eq!(outcome.report.attempts, expected, "job {i}");
    }
    assert_eq!(sink.counter(Counter::Retry), 1);

    // A recovered batch is bit-identical to one that never faulted.
    let clean_pool = WorkerPool::new(3);
    let clean_cache = TraceCache::new();
    let clean =
        embed_batch(&host_program(), &batch_embedder(), &jobs, &clean_pool, &clean_cache).unwrap();
    assert_eq!(marked_bytes(&outcomes), marked_bytes(&clean));
}

#[test]
fn fault_permanent_failure_is_reported_without_retrying() {
    let sink = Arc::new(MemorySink::new());
    let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
    let cache = TraceCache::new();
    let jobs = manifest(4);
    let options = BatchOptions {
        retry: fast_retries(5),
        deadline: None,
        faults: FaultPlan::for_tests().with_fault(0, Fault::PermanentError),
    };
    let outcomes = embed_batch_with(
        &host_program(),
        &batch_embedder(),
        &jobs,
        &pool,
        &cache,
        &options,
        |_| {},
    )
    .unwrap();
    match &outcomes[0].report.status {
        JobStatus::Failed(why) => assert!(why.contains("injected permanent fault"), "{why}"),
        other => panic!("expected Failed, got {other}"),
    }
    assert_eq!(
        outcomes[0].report.attempts, 1,
        "a permanent failure burns no retry budget"
    );
    assert!(outcomes[0].marked.is_none());
    assert!(outcomes[1..].iter().all(|o| o.report.status.is_ok()));
    assert_eq!(sink.counter(Counter::Retry), 0);
}

#[test]
fn fault_persistent_panic_exhausts_the_retry_budget() {
    let sink = Arc::new(MemorySink::new());
    let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
    let cache = TraceCache::new();
    let jobs = manifest(3);
    let options = BatchOptions {
        retry: fast_retries(2),
        deadline: None,
        faults: FaultPlan::for_tests().with_fault(2, Fault::Panic { attempts: 10 }),
    };
    let outcomes = embed_batch_with(
        &host_program(),
        &batch_embedder(),
        &jobs,
        &pool,
        &cache,
        &options,
        |_| {},
    )
    .unwrap();
    match &outcomes[2].report.status {
        JobStatus::Failed(why) => assert!(why.contains("injected panic"), "{why}"),
        other => panic!("expected Failed, got {other}"),
    }
    assert_eq!(outcomes[2].report.attempts, 3, "1 attempt + 2 retries");
    assert_eq!(sink.counter(Counter::Retry), 2);
    assert!(outcomes[..2].iter().all(|o| o.report.status.is_ok()));
}

#[test]
fn fault_timeout_reports_timed_out_without_stalling_siblings() {
    let sink = Arc::new(MemorySink::new());
    let pool = WorkerPool::with_telemetry(2, Telemetry::new(sink.clone()));
    let cache = TraceCache::new();
    let jobs = manifest(6);
    let options = BatchOptions {
        retry: RetryPolicy::none(),
        deadline: Some(Duration::from_millis(200)),
        faults: FaultPlan::for_tests().with_fault(1, Fault::Delay(Duration::from_secs(8))),
    };
    let outcomes = embed_batch_with(
        &host_program(),
        &batch_embedder(),
        &jobs,
        &pool,
        &cache,
        &options,
        |_| {},
    )
    .unwrap();
    assert_eq!(outcomes[1].report.status, JobStatus::TimedOut);
    assert_eq!(outcomes[1].report.attempts, 0, "never completed an attempt");
    assert_eq!(outcomes[1].report.wall_ms, 0, "deterministic synthetic line");
    assert!(outcomes[1].marked.is_none());
    for (i, outcome) in outcomes.iter().enumerate() {
        if i != 1 {
            assert!(outcome.report.status.is_ok(), "sibling {i}: {:?}", outcome.report);
        }
    }
    assert_eq!(sink.counter(Counter::JobTimeout), 1);
    assert!(sink.counter(Counter::WorkerRespawn) >= 1);

    // The replacement worker leaves the pool at full strength.
    let again = embed_batch(&host_program(), &batch_embedder(), &manifest(4), &pool, &cache)
        .unwrap();
    assert!(again.iter().all(|o| o.report.status.is_ok()));
}

#[test]
fn fault_injection_disabled_is_bit_identical_to_the_plain_batch() {
    let pool = WorkerPool::new(3);
    let cache = TraceCache::new();
    let jobs = manifest(8);
    let plain = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    let with_options = embed_batch_with(
        &host_program(),
        &batch_embedder(),
        &jobs,
        &pool,
        &cache,
        &BatchOptions {
            retry: fast_retries(3),
            deadline: Some(Duration::from_secs(60)),
            faults: FaultPlan::none(),
        },
        |_| {},
    )
    .unwrap();
    assert_eq!(marked_bytes(&plain), marked_bytes(&with_options));
    for (a, b) in plain.iter().zip(&with_options) {
        assert_eq!(a.report.job_id, b.report.job_id);
        assert_eq!(a.report.watermark_hex, b.report.watermark_hex);
        assert_eq!(a.report.seed, b.report.seed);
        assert_eq!(a.report.status, b.report.status);
        assert_eq!(a.report.attempts, b.report.attempts);
    }
}

/// Renders reports with `wall_ms` zeroed: the one nondeterministic
/// field, irrelevant to resume correctness.
fn normalized_lines(reports: &[JobReport]) -> Vec<String> {
    reports
        .iter()
        .map(|r| {
            let mut r = r.clone();
            r.wall_ms = 0;
            r.to_line()
        })
        .collect()
}

#[test]
fn fault_kill_and_resume_reproduces_the_uninterrupted_run() {
    let dir = std::env::temp_dir().join(format!("pathmark-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let jobs = manifest(8);

    // The reference: one uninterrupted run, streamed and finalized.
    let full_path = dir.join("full.jsonl");
    {
        let pool = WorkerPool::new(3);
        let cache = TraceCache::new();
        let mut writer = ReportWriter::create(&full_path).unwrap();
        let outcomes = embed_batch_with(
            &host_program(),
            &batch_embedder(),
            &jobs,
            &pool,
            &cache,
            &BatchOptions::default(),
            |o| writer.append(&o.report).unwrap(),
        )
        .unwrap();
        let ordered: Vec<JobReport> = outcomes.iter().map(|o| o.report.clone()).collect();
        writer.finalize(&ordered).unwrap();
    }

    // The interrupted run: the first three jobs settle, then the
    // process "dies" (writer dropped, never finalized) mid-writing a
    // fourth, torn line.
    let resumed_path = dir.join("resumed.jsonl");
    {
        let pool = WorkerPool::new(3);
        let cache = TraceCache::new();
        let mut writer = ReportWriter::create(&resumed_path).unwrap();
        let outcomes = embed_batch_with(
            &host_program(),
            &batch_embedder(),
            &jobs[..3],
            &pool,
            &cache,
            &BatchOptions::default(),
            |o| writer.append(&o.report).unwrap(),
        )
        .unwrap();
        use std::io::Write;
        let torn = &outcomes[0].report.to_line()[..14];
        let mut partial = std::fs::OpenOptions::new()
            .append(true)
            .open(writer.partial_path())
            .unwrap();
        partial.write_all(torn.as_bytes()).unwrap();
        // No finalize: the crash leaves only the partial sidecar.
    }

    // The resumed run: picks up the three settled jobs from the
    // sidecar, runs only the remaining five, finalizes the full report.
    {
        let pool = WorkerPool::new(3);
        let cache = TraceCache::new();
        let (mut writer, recorded) = ReportWriter::resume(&resumed_path).unwrap();
        assert_eq!(recorded.len(), 3, "three settled jobs survive the crash");
        let done: Vec<&str> = recorded.iter().map(|r| r.job_id.as_str()).collect();
        let pending: Vec<EmbedJobSpec> = jobs
            .iter()
            .filter(|j| !done.contains(&j.job_id.as_str()))
            .cloned()
            .collect();
        assert_eq!(pending.len(), 5);
        let outcomes = embed_batch_with(
            &host_program(),
            &batch_embedder(),
            &pending,
            &pool,
            &cache,
            &BatchOptions::default(),
            |o| writer.append(&o.report).unwrap(),
        )
        .unwrap();
        let mut by_id: std::collections::HashMap<String, JobReport> = recorded
            .into_iter()
            .chain(outcomes.into_iter().map(|o| o.report))
            .map(|r| (r.job_id.clone(), r))
            .collect();
        let ordered: Vec<JobReport> = jobs
            .iter()
            .map(|j| by_id.remove(&j.job_id).expect("every job settled"))
            .collect();
        writer.finalize(&ordered).unwrap();
    }

    // Modulo wall_ms (the one nondeterministic field), the resumed
    // report is line-for-line identical to the uninterrupted one.
    let full = parse_report(&std::fs::read_to_string(&full_path).unwrap()).unwrap();
    let resumed = parse_report(&std::fs::read_to_string(&resumed_path).unwrap()).unwrap();
    assert_eq!(normalized_lines(&full), normalized_lines(&resumed));
    let _ = std::fs::remove_dir_all(&dir);
}
