//! End-to-end tests for the batch fingerprinting engine: determinism
//! across runs and worker counts, sharded-vs-serial recognizer
//! equivalence on the pipeline fixtures, and failure isolation.

use pathmark::core::bitstring::BitString;
use pathmark::core::java::{
    embed, recognize_bits, trace_program, Embedder, JavaConfig, Recognition, Recognizer,
};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::fleet::batch::{embed_batch, recognize_batch, RecognizeJob};
use pathmark::fleet::cache::TraceCache;
use pathmark::fleet::manifest::EmbedJobSpec;
use pathmark::fleet::pool::WorkerPool;
use pathmark::fleet::shard::recognize_sharded;
use pathmark::vm::builder::{FunctionBuilder, ProgramBuilder};
use pathmark::vm::codec::encode_program;
use pathmark::vm::insn::Cond;
use pathmark::vm::trace::TraceConfig;
use pathmark::vm::Program;
use pathmark::workloads::java as workloads;

/// A small host with a loop, so batches stay fast in debug builds while
/// the trace still has cold and hot spots.
fn host_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = FunctionBuilder::new("main", 0, 2);
    let head = f.new_label();
    let out = f.new_label();
    f.push(0).store(0);
    f.bind(head);
    f.load(0).push(12).if_cmp(Cond::Ge, out);
    f.load(0).load(1).add().store(1);
    f.iinc(0, 1).goto(head);
    f.bind(out);
    f.load(1).print().ret_void();
    let main = pb.add_function(f.finish().unwrap());
    pb.finish(main).unwrap()
}

fn batch_key() -> WatermarkKey {
    WatermarkKey::new(0xF1EE7_CAFE, vec![3, 1, 4])
}

fn batch_config() -> JavaConfig {
    JavaConfig::for_watermark_bits(64).with_pieces(12)
}

fn manifest(n: usize) -> Vec<EmbedJobSpec> {
    (0..n)
        .map(|i| EmbedJobSpec::new(format!("copy-{i:03}")))
        .collect()
}

fn batch_embedder() -> Embedder {
    Embedder::builder(batch_key(), batch_config())
        .build()
        .expect("batch key/config are sound")
}

fn batch_recognizer() -> Recognizer {
    Recognizer::builder(batch_key(), batch_config())
        .build()
        .expect("batch key/config are sound")
}

#[test]
fn sixty_four_copies_each_recognize_to_their_own_watermark() {
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let jobs = manifest(64);
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    assert_eq!(outcomes.len(), 64);
    assert!(outcomes.iter().all(|o| o.report.status.is_ok()));
    assert_eq!(cache.stats().misses, 1, "one trace serves all 64 jobs");

    // 64 distinct watermarks and 64 distinct marked programs.
    let mut hexes: Vec<&str> = outcomes
        .iter()
        .map(|o| o.report.watermark_hex.as_str())
        .collect();
    hexes.sort_unstable();
    hexes.dedup();
    assert_eq!(hexes.len(), 64, "watermarks are pairwise distinct");
    let mut bytes: Vec<Vec<u8>> = outcomes
        .iter()
        .map(|o| encode_program(o.marked.as_ref().unwrap()))
        .collect();
    bytes.sort_unstable();
    bytes.dedup();
    assert_eq!(bytes.len(), 64, "copies are pairwise distinct");

    // Every copy recognizes back to exactly its own W_i; the report
    // line converts straight into a recognize job.
    let rec_jobs: Vec<RecognizeJob> = outcomes.iter().map(RecognizeJob::from).collect();
    let recognized = recognize_batch(&rec_jobs, &batch_recognizer(), &pool);
    for (outcome, job) in recognized.iter().zip(&rec_jobs) {
        assert!(
            outcome.report.status.is_ok(),
            "{}: {:?}",
            job.job_id,
            outcome.report
        );
        assert_eq!(
            Some(&outcome.report.watermark_hex),
            job.expected_hex.as_ref(),
            "{} recovers its own mark",
            job.job_id
        );
    }
}

#[test]
fn batches_are_byte_identical_across_runs_and_worker_counts() {
    let jobs = manifest(16);
    let mut baseline: Option<Vec<Vec<u8>>> = None;
    for workers in [1usize, 3, 8, 8] {
        let pool = WorkerPool::new(workers);
        let cache = TraceCache::new();
        let outcomes =
            embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
        let bytes: Vec<Vec<u8>> = outcomes
            .iter()
            .map(|o| encode_program(o.marked.as_ref().unwrap()))
            .collect();
        match &baseline {
            None => baseline = Some(bytes),
            Some(expected) => {
                assert_eq!(&bytes, expected, "{workers} workers diverged");
            }
        }
    }
}

#[test]
fn batch_copies_match_the_serial_embedder_exactly() {
    // A fleet copy must be byte-identical to what a lone `embed` call
    // with the same key and watermark would have produced.
    let pool = WorkerPool::new(4);
    let cache = TraceCache::new();
    let jobs = manifest(4);
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    for (outcome, spec) in outcomes.iter().zip(&jobs) {
        let job_key = spec.effective_key(&batch_key());
        let watermark = spec.watermark(&batch_key(), &batch_config()).unwrap();
        let serial = embed(&host_program(), &watermark, &job_key, &batch_config()).unwrap();
        assert_eq!(
            encode_program(outcome.marked.as_ref().unwrap()),
            encode_program(&serial.program),
            "{}",
            spec.job_id
        );
    }
}

#[test]
fn sharded_recognition_is_bit_identical_on_every_pipeline_fixture() {
    let pool = WorkerPool::new(4);
    for workload in workloads::all() {
        let key = WatermarkKey::new(0x0123_4567_89AB, workload.secret_input.clone());
        let config = JavaConfig::for_watermark_bits(128).with_pieces(40);
        let watermark = Watermark::random_for(&config, &key);
        let marked = embed(&workload.program, &watermark, &key, &config).unwrap();
        let session = Recognizer::builder(key.clone(), config.clone()).build().unwrap();
        for program in [&workload.program, &marked.program] {
            let trace =
                trace_program(program, &key, &config, TraceConfig::branches_only()).unwrap();
            let bits = BitString::from_trace(&trace);
            let serial: Recognition = recognize_bits(&bits, &key, &config).unwrap();
            for shards in [1usize, 5, 16] {
                let sharded = recognize_sharded(&bits, &session, shards, &pool).unwrap();
                assert_eq!(
                    sharded, serial,
                    "{}: {shards} shards diverged",
                    workload.name
                );
            }
        }
        // Sanity: the marked fixture actually recognizes.
        let trace =
            trace_program(&marked.program, &key, &config, TraceConfig::branches_only()).unwrap();
        let rec = recognize_sharded(&BitString::from_trace(&trace), &session, 8, &pool).unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(watermark.value()), "{}", workload.name);
    }
}

#[test]
fn one_malformed_job_fails_while_the_rest_complete() {
    let pool = WorkerPool::new(3);
    let cache = TraceCache::new();
    let mut jobs = manifest(8);
    jobs[3].watermark_hex = Some("this-is-not-hex".to_string());
    let outcomes = embed_batch(&host_program(), &batch_embedder(), &jobs, &pool, &cache).unwrap();
    let (ok, failed): (Vec<_>, Vec<_>) =
        outcomes.iter().partition(|o| o.report.status.is_ok());
    assert_eq!(ok.len(), 7, "the other seven copies complete");
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].report.job_id, "copy-003");
    assert!(failed[0].marked.is_none());
}

#[test]
fn a_panicking_job_is_contained_by_the_pool() {
    // Drive the pool the way the batch engine does, with one job that
    // panics outright: the panic must surface as that job's error only.
    let pool = WorkerPool::new(4);
    let results = pool.run_all((0..12).collect::<Vec<usize>>(), |_, i| {
        assert!(i != 5, "copy 5 is poisoned");
        i * i
    });
    for (i, result) in results.iter().enumerate() {
        if i == 5 {
            assert!(result.as_ref().unwrap_err().message.contains("poisoned"));
        } else {
            assert_eq!(*result.as_ref().unwrap(), i * i);
        }
    }
}
