//! Integration tests for the features that go beyond the paper's
//! evaluation: automatic-framing extraction, decoy obfuscation,
//! diversification, the baseline schemes, and the method-level attacks.

use pathmark::attacks::java as jattacks;
use pathmark::core::baseline::davidson_myhrvold as dm;
use pathmark::core::java::{Embedder, JavaConfig, Recognizer};
use pathmark::core::key::{Watermark, WatermarkKey};
use pathmark::core::native::{embed_native, extract_auto, NativeConfig};
use pathmark::crypto::Prng;
use pathmark::math::bigint::BigUint;
use pathmark::sim::cpu::Machine;
use pathmark::vm::interp::Vm;
use pathmark::workloads::{java as jworkloads, native as nworkloads};

const BUDGET: u64 = 400_000_000;

#[test]
fn auto_framing_extracts_from_real_workloads() {
    // No begin/end bracket supplied: the tracer must find the chain.
    for name in ["gzip", "vortex"] {
        let w = nworkloads::by_name(name).expect("workload exists");
        let key = WatermarkKey::new(
            0xAF_2004,
            w.training_input.iter().map(|&v| v as i64).collect(),
        );
        let config = NativeConfig {
            training_inputs: vec![w.reference_input.clone()],
            ..NativeConfig::default()
        };
        let mut rng = Prng::from_seed(0xAF);
        let watermark = Watermark::random(96, &mut rng);
        let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let (bits, spec) = extract_auto(&mark.image, &key.native_input(), BUDGET)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(Watermark::from_bits(&bits).value(), watermark.value(), "{name}");
        assert_eq!(spec.begin, mark.begin, "{name}: begin discovered");
        assert_eq!(spec.end, mark.end, "{name}: end discovered");
    }
}

#[test]
fn decoys_coexist_with_tamperproofing_on_workloads() {
    let w = nworkloads::by_name("gap").expect("gap exists");
    let key = WatermarkKey::new(
        0xDE_C0,
        w.training_input.iter().map(|&v| v as i64).collect(),
    );
    let config = NativeConfig {
        decoy_jumps: 3,
        training_inputs: vec![w.reference_input.clone()],
        ..NativeConfig::default()
    };
    let mut rng = Prng::from_seed(0xDC);
    let watermark = Watermark::random(48, &mut rng);
    let mark = embed_native(&w.image, &watermark.to_bits(), &key, &config).unwrap();
    assert!(mark.decoys > 0, "decoys installed");
    assert!(mark.tamper_cells > 0, "lock-down still active");
    // Reference behavior intact.
    let baseline = Machine::load(&w.image)
        .with_input(w.reference_input.clone())
        .run(BUDGET)
        .unwrap();
    let marked = Machine::load(&mark.image)
        .with_input(w.reference_input.clone())
        .run(BUDGET)
        .unwrap();
    assert_eq!(baseline.output, marked.output);
    // Auto-framing still finds the real chain among decoy hops.
    let (bits, _) = extract_auto(&mark.image, &key.native_input(), BUDGET).unwrap();
    assert_eq!(Watermark::from_bits(&bits).value(), watermark.value());
}

#[test]
fn diversified_population_still_fingerprints() {
    // The full collusion-defense pipeline: diversify per licensee, then
    // embed a distinct fingerprint; both marks recover, and the copies
    // differ almost everywhere.
    let product = jworkloads::caffeinemark();
    let key = WatermarkKey::new(0xD1F, vec![9]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(30);
    let mut rng = Prng::from_seed(0xD1F0);

    let mut copies = Vec::new();
    for seed in [11u64, 22] {
        let mut diversified = product.clone();
        jattacks::diversify(&mut diversified, seed);
        let fingerprint = Watermark::random(128, &mut rng);
        let marked = Embedder::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .embed(&diversified, &fingerprint)
            .unwrap();
        copies.push((fingerprint, marked.program));
    }
    let expected = Vm::new(&product).with_input(vec![9]).run().unwrap().output;
    for (fingerprint, program) in &copies {
        assert_eq!(
            Vm::new(program).with_input(vec![9]).run().unwrap().output,
            expected
        );
        let rec = Recognizer::builder(key.clone(), config.clone())
            .build()
            .unwrap()
            .recognize(program)
            .unwrap();
        assert_eq!(rec.watermark.as_ref(), Some(fingerprint.value()));
    }
    assert!(
        jattacks::diversity(&copies[0].1, &copies[1].1) > 0.9,
        "a colluding diff sees differences everywhere"
    );
}

#[test]
fn method_level_attacks_do_not_kill_the_path_mark() {
    let product = jworkloads::jess_like();
    let key = WatermarkKey::new(0x3E26E, vec![300]);
    let config = JavaConfig::for_watermark_bits(128).with_pieces(40);
    let watermark = Watermark::random_for(&config, &key);
    let marked = Embedder::builder(key.clone(), config.clone())
        .build()
        .unwrap()
        .embed(&product, &watermark)
        .unwrap();
    let expected = Vm::new(&product).with_input(vec![300]).run().unwrap().output;

    let mut attacked = marked.program.clone();
    assert!(jattacks::merge_methods(&mut attacked, 5).is_some());
    jattacks::split_method(&mut attacked, 6);
    pathmark::vm::verify::verify(&attacked).unwrap();
    assert_eq!(
        Vm::new(&attacked).with_input(vec![300]).run().unwrap().output,
        expected
    );
    let rec = Recognizer::builder(key, config)
        .build()
        .unwrap()
        .recognize(&attacked)
        .unwrap();
    assert_eq!(rec.watermark.as_ref(), Some(watermark.value()));
}

#[test]
fn block_order_baseline_round_trips_on_a_workload_function() {
    let program = jworkloads::caffeinemark();
    let (func, blocks) = dm::best_function(&program).expect("a usable function");
    let capacity = dm::capacity(blocks);
    assert!(capacity > BigUint::from(100u64));
    let w = BigUint::from(73u64);
    let mut marked = program.clone();
    dm::embed(&mut marked, func, &w).unwrap();
    // Behavior intact on several inputs.
    for input in [vec![], vec![6], vec![13]] {
        assert_eq!(
            Vm::new(&program).with_input(input.clone()).run().unwrap().output,
            Vm::new(&marked).with_input(input).run().unwrap().output
        );
    }
    assert_eq!(dm::recognize(&program, &marked, func), Some(w));
}
